"""Differential tests for the real multiprocess executor.

Three oracles triangulate ``repro.parallel``:

1. the single-process engine — L, U, per-task :class:`KernelStats` and
   solve vectors must be **bit-identical** for any worker count, across
   two solver substrates;
2. ``DistributedSimulator`` — the executor's owner-compute message and
   byte accounting must equal the simulator's fault-free numbers on the
   same DAG, grid and stats;
3. ``PlanVerifier`` — every dispatched plan certifies race-free, and a
   deliberately racy batch sequence is refused before anything runs.

The CI gate matrix runs this file once per worker count with
``REPRO_PARALLEL_WORKERS`` restricting the parametrisation to that cell.
"""

import os

import numpy as np
import pytest

from repro.cluster import DistributedSimulator, H100_CLUSTER
from repro.core.executor import ReplayBackend
from repro.matrices.generators import poisson2d
from repro.parallel import (
    ParallelExecutor,
    SharedRhsPool,
    SharedTileArena,
    WorkerCrashError,
    message_accounting,
)
from repro.solvers import SOLVER_REGISTRY
from repro.solvers.sptrsv import RhsPool
from repro.solvers.tilepool import TileArena
from repro.sparse.blocking import uniform_partition
from repro.verify.plan import verify_plan

#: (solver, kwargs) differential configurations.  superlu pins
#: merge_schur=False: the fusion rewrite happens downstream of the DAG
#: the parallel engine schedules, so both sides must stay unfused.
CONFIGS = [
    ("pangulu", {"block_size": 24}),
    ("superlu", {"max_supernode": 16, "merge_schur": False}),
]


def worker_counts() -> list[int]:
    """Worker counts under test; one CI matrix cell per count."""
    env = os.environ.get("REPRO_PARALLEL_WORKERS")
    return [int(env)] if env else [1, 2, 4]


@pytest.fixture(scope="module")
def problem():
    a = poisson2d(12)
    rng = np.random.default_rng(7)
    return a, rng.standard_normal(a.nrows)


@pytest.fixture(scope="module", params=CONFIGS,
                ids=[solver for solver, _ in CONFIGS])
def config(request):
    return request.param


@pytest.fixture(scope="module")
def reference(problem, config):
    """The single-process engine under the identical configuration."""
    a, b = problem
    solver, kwargs = config
    res = SOLVER_REGISTRY[solver](a, scheduler="trojan",
                                  **kwargs).factorize()
    x = res.solve(b, batch_solve=True, solve_scheduler="trojan")
    return res, x


@pytest.fixture(scope="module")
def runs(problem, config):
    """One multiprocess factorize+solve per worker count."""
    a, b = problem
    solver, kwargs = config
    out = {}
    for w in worker_counts():
        with ParallelExecutor(a, solver=solver, workers=w,
                              **kwargs) as ex:
            res = ex.factorize()
            x = ex.solve(b)
        out[w] = (res, x)
    return out


class TestBitIdentity:
    """Oracle 1: the single-process engine, to the bit."""

    def test_factors(self, reference, runs):
        ref, _ = reference
        for w, (res, _) in runs.items():
            assert np.array_equal(res.L.data, ref.L.data), w
            assert np.array_equal(res.L.indices, ref.L.indices), w
            assert np.array_equal(res.U.data, ref.U.data), w
            assert np.array_equal(res.U.indices, ref.U.indices), w
            assert np.array_equal(res.perm, ref.perm), w

    def test_per_task_stats(self, reference, runs):
        ref, _ = reference
        for w, (res, _) in runs.items():
            assert res.stats == ref.stats, w

    def test_solve_vectors(self, reference, runs):
        _, xr = reference
        for w, (_, x) in runs.items():
            assert np.array_equal(x, xr), w

    def test_multi_rhs_solve(self, problem, config, reference):
        a, _ = problem
        solver, kwargs = config
        rng = np.random.default_rng(11)
        b2 = rng.standard_normal((a.nrows, 3))
        ref, _ = reference
        xr = ref.solve(b2, batch_solve=True, solve_scheduler="trojan")
        with ParallelExecutor(a, solver=solver, workers=2, **kwargs) as ex:
            x = ex.solve(b2)
        assert np.array_equal(x, xr)


class TestSimulatorOracle:
    """Oracle 2: DistributedSimulator's fault-free traffic accounting."""

    def test_messages_and_bytes_match_distsim(self, runs):
        for w, (res, _) in runs.items():
            sim = DistributedSimulator(res.dag, ReplayBackend(res.stats),
                                       H100_CLUSTER, w, "trojan",
                                       grid=res.grid).run()
            assert res.messages == sim.messages, w
            assert res.comm_bytes == sim.comm_bytes, w

    def test_single_worker_is_message_free(self, runs):
        res, _ = runs[min(runs)]
        if res.workers == 1:
            assert res.messages == 0 and res.comm_bytes == 0

    def test_accounting_is_pure(self, runs):
        for w, (res, _) in runs.items():
            arrays = res.dag.task_arrays()
            owner = res.grid.owner_array(arrays.i, arrays.j)
            assert message_accounting(res.dag, owner) == (
                res.messages, res.comm_bytes)


class TestPlanCertification:
    """Oracle 3: PlanVerifier certifies what actually dispatched."""

    def test_every_run_carries_a_certified_plan(self, runs):
        for w, (res, _) in runs.items():
            assert res.plan is not None, w
            assert res.plan.nprocs == w
            report = verify_plan(res.plan, subject=f"recheck-w{w}")
            assert report.ok, report.violations

    def test_plan_order_is_the_batch_order(self, runs):
        for _, (res, _) in runs.items():
            arrays = res.dag.task_arrays()
            owner = res.grid.owner_array(arrays.i, arrays.j)
            flat = np.concatenate(res.batch_plan.batches)
            for r, order in enumerate(res.plan.order):
                assert np.array_equal(order, flat[owner[flat] == r])

    def test_racy_batches_refused_before_dispatch(self, problem,
                                                  monkeypatch):
        # collapse the whole DAG into one "batch": dependent tasks
        # side by side, which the conflict scan must refuse to dispatch
        import repro.parallel.executor as pex

        a, _ = problem
        real = pex.record_batch_plan

        def racy(dag, model, **kwargs):
            plan = real(dag, model, **kwargs)
            flat = np.concatenate(plan.batches)
            return pex.BatchPlan(scheduler=plan.scheduler,
                                 device=plan.device, batches=[flat],
                                 n_tasks=plan.n_tasks)

        monkeypatch.setattr(pex, "record_batch_plan", racy)
        with ParallelExecutor(a, workers=2, block_size=24) as ex:
            with pytest.raises(RuntimeError, match="refusing to dispatch"):
                ex.factorize()


class TestSharedPools:
    """SharedTileArena/SharedRhsPool re-homing semantics."""

    def test_arena_attach_sees_creator_data(self, problem):
        a, _ = problem
        part = uniform_partition(a.nrows, 24)
        plain = TileArena(part, np.ones((part.nblocks,) * 2, dtype=bool))
        shared = SharedTileArena(part, np.ones((part.nblocks,) * 2,
                                               dtype=bool))
        try:
            shared.stamp(a)
            plain.stamp(a)
            attached = SharedTileArena.attach(shared.spec())
            try:
                for pool_a, pool_b in zip(plain.pools, attached.pools):
                    assert np.array_equal(pool_a, pool_b)
                # writes through one mapping are visible through the other
                attached.pools[0][...] = 3.25
                assert np.all(shared.pools[0] == 3.25)
            finally:
                attached.close()
        finally:
            shared.close()
            shared.unlink()

    def test_rhs_gather_round_trips(self, problem):
        a, _ = problem
        part = uniform_partition(a.nrows, 24)
        rng = np.random.default_rng(3)
        b2 = rng.standard_normal((part.n, 2))
        shared = SharedRhsPool(part, b2)
        plain = RhsPool(part, b2)
        try:
            attached = SharedRhsPool.attach(shared.spec())
            try:
                assert np.array_equal(attached.gather(), plain.gather())
                assert np.array_equal(attached.gather(), b2)
            finally:
                attached.close()
        finally:
            shared.close()
            shared.unlink()

    def test_only_creator_may_unlink(self, problem):
        a, _ = problem
        part = uniform_partition(a.nrows, 24)
        shared = SharedTileArena(part, np.ones((part.nblocks,) * 2,
                                               dtype=bool))
        try:
            attached = SharedTileArena.attach(shared.spec())
            with pytest.raises(RuntimeError, match="creating side"):
                attached.unlink()
            attached.close()
        finally:
            shared.close()
            shared.unlink()


class TestCoordinator:
    def test_rejects_bad_arguments(self, problem):
        a, _ = problem
        with pytest.raises(ValueError, match="workers"):
            ParallelExecutor(a, workers=0)
        with pytest.raises(ValueError, match="solver"):
            ParallelExecutor(a, solver="magma")

    def test_worker_error_reported_structured(self, problem):
        a, _ = problem
        ex = ParallelExecutor(a, workers=1, block_size=24)
        try:
            ex.start()
            ex._task_qs[0].put(("frobnicate",))
            with pytest.raises(WorkerCrashError) as exc_info:
                ex._await("done", 1, phase=0)
            assert exc_info.value.kind == "error"
            assert "frobnicate" in str(exc_info.value)
        finally:
            ex.close()

    def test_solve_before_factorize_factorizes(self, problem):
        a, b = problem
        with ParallelExecutor(a, workers=2, block_size=24) as ex:
            x = ex.solve(b)
            assert ex.result is not None
        ref = SOLVER_REGISTRY["pangulu"](a, scheduler="trojan",
                                         block_size=24).factorize()
        assert np.array_equal(
            x, ref.solve(b, batch_solve=True, solve_scheduler="trojan"))

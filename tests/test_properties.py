"""Property-based tests (hypothesis) for the core data structures and
scheduling invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis import HealthCheck

from repro.core import (
    Collector,
    Container,
    Task,
    TaskType,
    build_block_dag,
    make_scheduler,
)
from repro.core.executor import BlockTaskMapping, EstimateBackend
from repro.gpusim import GPUCostModel, GPUSpec, RTX5090
from repro.sparse import (
    COOMatrix,
    CSRMatrix,
    inverse_permutation,
    permute_symmetric,
    spgemm,
    uniform_partition,
)
from repro.symbolic import block_fill, symbolic_fill


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def coo_matrices(draw, max_n=12):
    n = draw(st.integers(2, max_n))
    m = draw(st.integers(2, max_n))
    nnz = draw(st.integers(0, n * m))
    rows = draw(st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz))
    cols = draw(st.lists(st.integers(0, m - 1), min_size=nnz, max_size=nnz))
    vals = draw(st.lists(
        st.floats(-10, 10, allow_nan=False, allow_infinity=False),
        min_size=nnz, max_size=nnz))
    return COOMatrix((n, m), np.asarray(rows, dtype=np.int64),
                     np.asarray(cols, dtype=np.int64),
                     np.asarray(vals, dtype=np.float64))


@st.composite
def square_patterns(draw, max_n=10):
    n = draw(st.integers(2, max_n))
    density = draw(st.floats(0.1, 0.7))
    seed = draw(st.integers(0, 2 ** 16))
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < density) * rng.standard_normal((n, n))
    dense += np.diag(np.abs(dense).sum(axis=1) + 1.0)
    return CSRMatrix.from_dense(dense)


@st.composite
def task_lists(draw):
    k = draw(st.integers(1, 12))
    tasks = []
    for tid in range(k):
        ttype = draw(st.sampled_from(list(TaskType)))
        rows = draw(st.integers(1, 30))
        cols = draw(st.integers(1, 30))
        tasks.append(Task(tid=tid, type=ttype, k=0, i=tid, j=tid,
                          rows=rows, cols=cols, nnz=rows * cols,
                          flops_est=rows * cols, bytes_est=8 * rows * cols))
    return tasks


# ----------------------------------------------------------------------
# sparse format properties
# ----------------------------------------------------------------------
class TestSparseProperties:
    @given(coo_matrices())
    def test_coo_csr_roundtrip_preserves_dense(self, coo):
        csr = coo.to_csr()
        csr.check()
        assert np.allclose(csr.to_dense(), coo.to_dense())

    @given(coo_matrices())
    def test_transpose_involution(self, coo):
        csr = coo.to_csr()
        tt = csr.transpose().transpose()
        assert np.allclose(tt.to_dense(), csr.to_dense())

    @given(coo_matrices(), coo_matrices())
    def test_spgemm_matches_dense(self, ca, cb):
        a, b = ca.to_csr(), cb.to_csr()
        if a.ncols != b.nrows:
            return
        c = spgemm(a, b)
        c.check()
        assert np.allclose(c.to_dense(), a.to_dense() @ b.to_dense(),
                           atol=1e-9)

    @given(square_patterns(), st.integers(0, 2 ** 16))
    def test_symmetric_permutation_conjugation(self, a, seed):
        rng = np.random.default_rng(seed)
        p = rng.permutation(a.nrows)
        b = permute_symmetric(a, p)
        back = permute_symmetric(b, inverse_permutation(p))
        assert np.allclose(back.to_dense(), a.to_dense())

    @given(square_patterns())
    def test_fill_is_superset_of_input_pattern(self, a):
        fill = symbolic_fill(a)
        sym = a.pattern_symmetrized().to_dense() > 0
        pred = fill.filled.to_dense() > 0
        assert np.all(pred | ~sym)

    @given(square_patterns(), st.integers(1, 5))
    def test_block_fill_covers_element_fill(self, a, bs):
        # symbolic_fill symmetrises (static-pivoting upper bound), so the
        # coverage comparison must run block_fill on the same pattern
        sym = a.pattern_symmetrized()
        part = uniform_partition(a.nrows, bs)
        bf = block_fill(sym, part)
        pred = symbolic_fill(a).filled.to_dense() > 0
        for bi in range(part.nblocks):
            for bj in range(part.nblocks):
                r0, r1 = part.block_range(bi)
                c0, c1 = part.block_range(bj)
                if pred[r0:r1, c0:c1].any():
                    assert bf[bi, bj]


# ----------------------------------------------------------------------
# Trojan Horse module properties
# ----------------------------------------------------------------------
class TestModuleProperties:
    @given(task_lists())
    def test_mapping_total_blocks(self, tasks):
        m = BlockTaskMapping.build(tasks)
        assert m.total_blocks == sum(t.cuda_blocks for t in tasks)
        for b in range(m.total_blocks):
            ti = m.task_of_block(b)
            assert m.starts[ti] <= b < m.starts[ti] + tasks[ti].cuda_blocks

    @given(task_lists())
    def test_container_pops_in_priority_order(self, tasks):
        c = Container()
        for t in tasks:
            c.push(t)
        by_id = {t.tid: t for t in tasks}
        popped = [by_id[c.pop()] for _ in range(len(tasks))]
        keys = [(t.distance, t.k) for t in popped]
        assert keys == sorted(keys)

    @given(task_lists(), st.integers(1, 8), st.integers(1, 8))
    def test_collector_never_overflows_multi_task_batches(self, tasks, sms,
                                                          bpm):
        gpu = GPUSpec("toy", sm_count=sms, fp64_gflops=1, mem_bw_gbs=1,
                      memory_gb=1, max_blocks_per_sm=bpm)
        coll = Collector(gpu)
        admitted = [t for t in tasks if coll.try_push(t)]
        if len(admitted) > 1:
            assert (sum(t.cuda_blocks for t in admitted)
                    <= gpu.max_resident_blocks)


# ----------------------------------------------------------------------
# scheduler properties
# ----------------------------------------------------------------------
class TestSchedulerProperties:
    @settings(deadline=None, max_examples=25,
              suppress_health_check=[HealthCheck.too_slow])
    @given(square_patterns(max_n=24), st.integers(2, 6),
           st.sampled_from(["serial", "levelbatch", "streams", "trojan"]))
    def test_any_matrix_any_scheduler_completes(self, a, bs, name):
        part = uniform_partition(a.nrows, bs)
        dag = build_block_dag(block_fill(a, part), part, sparse_tiles=True)
        r = make_scheduler(name, dag, EstimateBackend(),
                           GPUCostModel(RTX5090)).run()
        executed = sorted(t for b in r.batches for t in b.task_ids)
        assert executed == list(range(dag.n_tasks))
        # dependency order respected
        end = {}
        start = {}
        for b in r.batches:
            for tid in b.task_ids:
                end[tid] = b.t_end
                start[tid] = b.t_start
        for t in range(dag.n_tasks):
            for s in dag.successors[t]:
                assert start[s] >= end[t] - 1e-12

    @settings(deadline=None, max_examples=15,
              suppress_health_check=[HealthCheck.too_slow])
    @given(square_patterns(max_n=24), st.integers(2, 6))
    def test_trojan_never_more_kernels_than_serial(self, a, bs):
        part = uniform_partition(a.nrows, bs)
        dag = build_block_dag(block_fill(a, part), part, sparse_tiles=True)
        model = GPUCostModel(RTX5090)
        serial = make_scheduler("serial", dag, EstimateBackend(), model).run()
        trojan = make_scheduler("trojan", dag, EstimateBackend(), model).run()
        assert trojan.kernel_count <= serial.kernel_count
        assert trojan.total_flops == serial.total_flops

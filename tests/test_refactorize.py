"""Tests for value-only refactorisation (the circuit fast path)."""

import numpy as np
import pytest

from repro.matrices import circuit_like, poisson2d
from repro.solvers import PanguLUSolver, SuperLUSolver
from repro.sparse import CSRMatrix, matvec


def _same_pattern_new_values(a: CSRMatrix, rng) -> CSRMatrix:
    out = a.copy()
    rows = np.repeat(np.arange(a.nrows), a.row_lengths())
    off = rows != a.indices
    out.data[off] = rng.standard_normal(int(off.sum())) * 0.5
    # keep the diagonal dominant so the pivot-free path stays valid
    offsum = np.bincount(rows[off], weights=np.abs(out.data[off]),
                         minlength=a.nrows)
    out.data[~off] = 2.0 * offsum[rows[~off]] + 1.0
    return out


class TestRefactorize:
    def test_correct_factors_and_solve(self, rng):
        a = circuit_like(120, seed=3)
        solver = PanguLUSolver(a, block_size=16, scheduler="trojan")
        solver.factorize()
        a2 = _same_pattern_new_values(a, rng)
        result = solver.refactorize(a2)
        x_true = rng.standard_normal(a2.nrows)
        b = matvec(a2, x_true)
        x = result.solve(b)
        assert np.linalg.norm(x - x_true) / np.linalg.norm(x_true) < 1e-10

    def test_matches_full_factorize(self, rng):
        a = poisson2d(10)
        a2 = _same_pattern_new_values(a, rng)
        fast = PanguLUSolver(a, block_size=16)
        fast.factorize()
        r_fast = fast.refactorize(a2)
        r_full = PanguLUSolver(a2, block_size=16).factorize()
        assert np.allclose(r_fast.L.to_dense(), r_full.L.to_dense())
        assert np.allclose(r_fast.U.to_dense(), r_full.U.to_dense())

    def test_skips_reorder_and_symbolic(self, rng):
        a = circuit_like(100, seed=5)
        solver = PanguLUSolver(a, block_size=16)
        solver.factorize()
        r = solver.refactorize(_same_pattern_new_values(a, rng))
        assert r.phase_seconds["reorder"] == 0.0
        assert r.phase_seconds["symbolic"] == 0.0

    def test_requires_prior_factorize(self):
        solver = PanguLUSolver(poisson2d(8), block_size=16)
        with pytest.raises(RuntimeError):
            solver.refactorize(poisson2d(8))

    def test_rejects_different_pattern(self):
        solver = PanguLUSolver(poisson2d(8), block_size=16)
        solver.factorize()
        with pytest.raises(ValueError):
            solver.refactorize(circuit_like(64, seed=1))

    def test_rejects_different_size(self):
        solver = PanguLUSolver(poisson2d(8), block_size=16)
        solver.factorize()
        with pytest.raises(ValueError):
            solver.refactorize(poisson2d(9))

    def test_superlu_fused_refactorize(self, rng):
        a = circuit_like(90, seed=7)
        solver = SuperLUSolver(a, max_supernode=8, scheduler="trojan")
        solver.factorize()
        a2 = _same_pattern_new_values(a, rng)
        r = solver.refactorize(a2)
        b = rng.standard_normal(a2.nrows)
        x = r.solve(b)
        assert r.residual(a2, b, x) < 1e-10

    def test_repeated_refactorisations(self, rng):
        a = circuit_like(80, seed=9)
        solver = PanguLUSolver(a, block_size=16)
        solver.factorize()
        for step in range(3):
            a = _same_pattern_new_values(a, rng)
            r = solver.refactorize(a)
            b = rng.standard_normal(a.nrows)
            assert r.residual(a, b, r.solve(b)) < 1e-10

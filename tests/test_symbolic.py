"""Unit tests for the symbolic phase (etree, fill, supernodes, block fill)."""

import numpy as np
import pytest

from repro.matrices import circuit_like, poisson2d, tridiagonal
from repro.ordering import compute_ordering
from repro.sparse import CSRMatrix, permute_symmetric, uniform_partition
from repro.symbolic import (
    block_fill,
    column_counts,
    elimination_tree,
    etree_levels,
    find_supernodes,
    postorder,
    symbolic_fill,
)
from repro.symbolic.etree import etree_height


def _dense_lu_pattern(dense: np.ndarray) -> np.ndarray:
    """Nonzero pattern of the pivot-free dense LU (ground truth)."""
    lu = dense.copy()
    n = lu.shape[0]
    for k in range(n - 1):
        lu[k + 1:, k] /= lu[k, k]
        lu[k + 1:, k + 1:] -= np.outer(lu[k + 1:, k], lu[k, k + 1:])
    return np.abs(lu) > 1e-12


class TestEtree:
    def test_chain_etree(self):
        parent = elimination_tree(tridiagonal(8))
        assert np.array_equal(parent, [1, 2, 3, 4, 5, 6, 7, -1])

    def test_diagonal_matrix_forest(self):
        a = CSRMatrix.identity(5)
        parent = elimination_tree(a)
        assert np.all(parent == -1)

    def test_parent_always_larger(self):
        a = circuit_like(60, seed=1)
        parent = elimination_tree(a)
        for v in range(60):
            assert parent[v] == -1 or parent[v] > v

    def test_requires_square(self):
        with pytest.raises(ValueError):
            elimination_tree(CSRMatrix.empty((3, 4)))

    def test_levels_root_zero(self):
        parent = elimination_tree(tridiagonal(6))
        levels = etree_levels(parent)
        assert levels[5] == 0  # root
        assert levels[0] == 5  # deepest leaf of the chain

    def test_heights_leaf_zero(self):
        parent = elimination_tree(tridiagonal(6))
        heights = etree_height(parent)
        assert heights[0] == 0
        assert heights[5] == 5

    def test_postorder_children_first(self):
        a = poisson2d(6)
        parent = elimination_tree(a)
        po = postorder(parent)
        pos = np.empty(36, dtype=int)
        pos[po] = np.arange(36)
        for v in range(36):
            if parent[v] != -1:
                assert pos[v] < pos[parent[v]]

    def test_postorder_is_permutation(self):
        parent = elimination_tree(circuit_like(50, seed=2))
        assert np.array_equal(np.sort(postorder(parent)), np.arange(50))


class TestFill:
    @pytest.mark.parametrize("builder", [
        lambda: poisson2d(7),
        lambda: circuit_like(48, seed=5),
        lambda: tridiagonal(20),
    ])
    def test_fill_covers_actual_lu(self, builder):
        a = builder()
        fill = symbolic_fill(a)
        actual = _dense_lu_pattern(a.to_dense())
        predicted = fill.filled.to_dense() > 0
        assert np.all(predicted | ~actual)

    def test_fill_exact_on_symmetric_structure(self):
        # for a symmetric pattern, etree fill is tight (no overestimate of
        # the symmetrised-structure bound)
        a = poisson2d(6)
        p = compute_ordering(a, "mindeg")
        b = permute_symmetric(a, p)
        fill = symbolic_fill(b)
        actual = _dense_lu_pattern(b.to_dense())
        # symbolic count equals the symmetrised prediction; actual may be
        # smaller only through numerical cancellation
        assert fill.filled.nnz >= actual.sum()

    def test_nnz_lu_counts_diagonal_once(self):
        a = tridiagonal(10)
        fill = symbolic_fill(a)
        # tridiagonal: no fill, L strict = 9, U strict = 9, diag = 10
        assert fill.nnz_lu == 28

    def test_fill_structure_symmetric(self):
        a = circuit_like(40, seed=9)
        fill = symbolic_fill(a)
        f = fill.filled.to_dense() > 0
        assert np.array_equal(f, f.T)

    def test_lower_is_strictly_lower(self):
        fill = symbolic_fill(poisson2d(5))
        rows = np.repeat(np.arange(25), fill.lower.row_lengths())
        assert np.all(rows > fill.lower.indices)

    def test_column_counts_match_structure(self):
        fill = symbolic_fill(poisson2d(5))
        counts = column_counts(fill)
        lower_dense = fill.lower.to_dense() > 0
        assert np.array_equal(counts, lower_dense.sum(axis=0) + 1)

    def test_requires_square(self):
        with pytest.raises(ValueError):
            symbolic_fill(CSRMatrix.empty((3, 4)))


class TestSupernodes:
    def test_partition_covers_matrix(self):
        fill = symbolic_fill(poisson2d(8))
        part = find_supernodes(fill, max_size=8)
        assert part.n == 64

    def test_max_size_respected(self):
        fill = symbolic_fill(poisson2d(8))
        part = find_supernodes(fill, max_size=4)
        assert part.sizes().max() <= 4

    def test_dense_block_merges_fully(self):
        # a fully dense matrix is one supernode (up to max_size)
        dense = np.ones((12, 12)) + 20 * np.eye(12)
        fill = symbolic_fill(CSRMatrix.from_dense(dense))
        part = find_supernodes(fill, max_size=12)
        assert part.nblocks == 1

    def test_diagonal_matrix_all_singletons(self):
        fill = symbolic_fill(CSRMatrix.identity(7))
        part = find_supernodes(fill, max_size=8)
        assert part.nblocks == 7

    def test_relaxation_merges_more(self):
        a = circuit_like(80, seed=3)
        fill = symbolic_fill(a)
        strict = find_supernodes(fill, max_size=16, relax=0)
        relaxed = find_supernodes(fill, max_size=16, relax=4)
        assert relaxed.nblocks <= strict.nblocks


class TestBlockFill:
    def test_covers_element_fill(self):
        a = circuit_like(60, seed=7)
        fill = symbolic_fill(a)
        part = uniform_partition(60, 8)
        bf = block_fill(a, part)
        pred = fill.filled.to_dense() > 0
        for bi in range(part.nblocks):
            for bj in range(part.nblocks):
                r0, r1 = part.block_range(bi)
                c0, c1 = part.block_range(bj)
                if pred[r0:r1, c0:c1].any():
                    assert bf[bi, bj]

    def test_diagonal_always_filled(self):
        part = uniform_partition(8, 2)
        bf = block_fill(CSRMatrix.identity(8), part)
        assert np.all(np.diag(bf))

    def test_accepts_pattern_array(self):
        part = uniform_partition(6, 2)
        pat = np.eye(3, dtype=bool)
        pat[2, 0] = pat[0, 2] = True
        bf = block_fill(pat, part)
        assert bf[2, 2]  # fill-in from elimination is not needed here
        assert bf[2, 0] and bf[0, 2]

    def test_elimination_creates_block_fill(self):
        part = uniform_partition(6, 2)
        pat = np.eye(3, dtype=bool)
        pat[1, 0] = pat[0, 1] = True
        pat[2, 0] = pat[0, 2] = True
        bf = block_fill(pat, part)
        # eliminating block column 0 couples blocks 1 and 2
        assert bf[1, 2] and bf[2, 1]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            block_fill(np.eye(2, dtype=bool), uniform_partition(6, 2))

"""Tests for multi-RHS solves and iterative refinement."""

import numpy as np
import pytest

from repro.matrices import circuit_like, poisson2d
from repro.solvers import PanguLUSolver
from repro.sparse import matvec


class TestMultiRHS:
    def test_matrix_rhs(self, medium_poisson, rng):
        run = PanguLUSolver(medium_poisson, block_size=16).factorize()
        B = rng.standard_normal((medium_poisson.nrows, 5))
        X = run.solve(B)
        assert X.shape == B.shape
        for k in range(5):
            r = matvec(medium_poisson, X[:, k]) - B[:, k]
            assert np.linalg.norm(r) / np.linalg.norm(B[:, k]) < 1e-10


class TestRefinement:
    def test_refinement_never_hurts(self, rng):
        a = circuit_like(150, seed=4)
        run = PanguLUSolver(a, block_size=16).factorize()
        x_true = rng.standard_normal(a.nrows)
        b = matvec(a, x_true)
        x0 = run.solve(b)
        x2 = run.solve(b, refine=2, a=a)
        r0 = np.linalg.norm(matvec(a, x0) - b)
        r2 = np.linalg.norm(matvec(a, x2) - b)
        assert r2 <= r0 * 1.01

    def test_refinement_requires_matrix(self, medium_poisson):
        run = PanguLUSolver(medium_poisson, block_size=16).factorize()
        with pytest.raises(ValueError):
            run.solve(np.ones(medium_poisson.nrows), refine=1)

    def test_zero_refinement_is_plain_solve(self, medium_poisson, rng):
        run = PanguLUSolver(medium_poisson, block_size=16).factorize()
        b = rng.standard_normal(medium_poisson.nrows)
        assert np.allclose(run.solve(b),
                           run.solve(b, refine=0, a=medium_poisson))

"""Tests for multi-RHS solves and iterative refinement."""

import numpy as np
import pytest

from repro.matrices import circuit_like, poisson2d
from repro.solvers import PanguLUSolver
from repro.sparse import matvec


class TestMultiRHS:
    def test_matrix_rhs(self, medium_poisson, rng):
        run = PanguLUSolver(medium_poisson, block_size=16).factorize()
        B = rng.standard_normal((medium_poisson.nrows, 5))
        X = run.solve(B)
        assert X.shape == B.shape
        for k in range(5):
            r = matvec(medium_poisson, X[:, k]) - B[:, k]
            assert np.linalg.norm(r) / np.linalg.norm(B[:, k]) < 1e-10


class TestRefinement:
    def test_refinement_never_hurts(self, rng):
        a = circuit_like(150, seed=4)
        run = PanguLUSolver(a, block_size=16).factorize()
        x_true = rng.standard_normal(a.nrows)
        b = matvec(a, x_true)
        x0 = run.solve(b)
        x2 = run.solve(b, refine=2, a=a)
        r0 = np.linalg.norm(matvec(a, x0) - b)
        r2 = np.linalg.norm(matvec(a, x2) - b)
        assert r2 <= r0 * 1.01

    def test_refinement_requires_matrix(self, medium_poisson):
        run = PanguLUSolver(medium_poisson, block_size=16).factorize()
        with pytest.raises(ValueError):
            run.solve(np.ones(medium_poisson.nrows), refine=1)

    def test_zero_refinement_is_plain_solve(self, medium_poisson, rng):
        run = PanguLUSolver(medium_poisson, block_size=16).factorize()
        b = rng.standard_normal(medium_poisson.nrows)
        assert np.allclose(run.solve(b),
                           run.solve(b, refine=0, a=medium_poisson))


@pytest.fixture(scope="module")
def circuit_run():
    """One factorised circuit system shared by the regression matrix."""
    a = circuit_like(150, seed=4)
    return a, PanguLUSolver(a, block_size=16).factorize()


class TestMultiRHSRefinement:
    """Regressions for refined multi-RHS solves.

    ``np.bincount`` weights are 1-D only, so before the 2-D ``matvec``
    fix every ``solve(b2d, refine>0)`` raised on the refinement
    residual; this matrix pins both solve paths across widths/sweeps.
    """

    @pytest.mark.parametrize("nrhs", [1, 4, 32])
    @pytest.mark.parametrize("refine", [1, 2])
    @pytest.mark.parametrize("batch_solve", [False, True])
    def test_refined_solve(self, circuit_run, rng, nrhs, refine, batch_solve):
        a, run = circuit_run
        x_true = rng.standard_normal((a.nrows, nrhs))
        b = matvec(a, x_true)
        x = run.solve(b, refine=refine, a=a, batch_solve=batch_solve)
        assert x.shape == (a.nrows, nrhs)
        assert np.all(np.isfinite(x))
        res = run.residuals(a, b, x)
        assert res.shape == (nrhs,)
        assert float(np.max(res)) < 1e-9

    @pytest.mark.parametrize("nrhs", [4, 32])
    def test_refined_oracle(self, circuit_run, rng, nrhs):
        a, run = circuit_run
        b = matvec(a, rng.standard_normal((a.nrows, nrhs)))
        x = run.solve_per_column_oracle(b, refine=2, a=a)
        assert x.shape == b.shape
        assert run.residual(a, b, x) < 1e-9

    def test_negative_refine_raises(self, circuit_run):
        a, run = circuit_run
        b = np.ones(a.nrows)
        with pytest.raises(ValueError, match=">= 0"):
            run.solve(b, refine=-1, a=a)
        with pytest.raises(ValueError, match=">= 0"):
            run.solve_per_column_oracle(b, refine=-1, a=a)


class TestResiduals:
    def test_per_column_values(self, circuit_run, rng):
        a, run = circuit_run
        b = rng.standard_normal((a.nrows, 3))
        x = run.solve(b)
        res = run.residuals(a, b, x)
        for k in range(3):
            expect = (np.linalg.norm(matvec(a, x[:, k]) - b[:, k])
                      / np.linalg.norm(b[:, k]))
            assert res[k] == pytest.approx(expect, rel=1e-12)
        # the scalar summary is the max, so one bad column cannot hide
        assert run.residual(a, b, x) == float(np.max(res))

    def test_zero_b_convention(self, circuit_run):
        # zero RHS: relative residual is undefined, so the absolute
        # norm is reported — 0.0 for the exact null solution, never inf
        a, run = circuit_run
        b = np.zeros(a.nrows)
        x = run.solve(b)
        assert run.residual(a, b, x) == 0.0
        b2 = np.zeros((a.nrows, 2))
        b2[:, 1] = matvec(a, np.ones(a.nrows))
        res = run.residuals(a, b2, run.solve(b2))
        assert np.all(np.isfinite(res))
        assert res[0] == 0.0

"""Unit tests for the reordering phase (RCM, minimum degree, nested
dissection and the driver)."""

import numpy as np
import pytest

from repro.matrices import arrow_matrix, circuit_like, poisson2d, tridiagonal
from repro.ordering import (
    ORDERING_METHODS,
    compute_ordering,
    minimum_degree,
    nested_dissection,
    rcm,
)
from repro.ordering.graph import (
    adjacency_from_pattern,
    bfs_levels,
    connected_components,
    pseudo_peripheral_node,
)
from repro.sparse import CSRMatrix, permute_symmetric
from repro.symbolic import symbolic_fill


def _bandwidth(a: CSRMatrix) -> int:
    rows = np.repeat(np.arange(a.nrows), a.row_lengths())
    return int(np.abs(rows - a.indices).max())


class TestGraphUtils:
    def test_adjacency_symmetric_no_diagonal(self):
        a = circuit_like(60, seed=0)
        indptr, indices = adjacency_from_pattern(a)
        n = a.nrows
        # no self loops
        rows = np.repeat(np.arange(n), np.diff(indptr))
        assert not np.any(rows == indices)
        # symmetric: every edge appears both ways
        fwd = set(zip(rows.tolist(), indices.tolist()))
        assert all((v, u) in fwd for (u, v) in fwd)

    def test_bfs_levels_distances(self):
        a = tridiagonal(10)
        indptr, indices = adjacency_from_pattern(a)
        level, fronts = bfs_levels(indptr, indices, 0)
        assert np.array_equal(level, np.arange(10))
        assert len(fronts) == 10

    def test_bfs_respects_mask(self):
        a = tridiagonal(10)
        indptr, indices = adjacency_from_pattern(a)
        mask = np.ones(10, dtype=bool)
        mask[5] = False
        level, _ = bfs_levels(indptr, indices, 0, mask)
        assert np.all(level[6:] == -1)

    def test_bfs_masked_start_rejected(self):
        a = tridiagonal(6)
        indptr, indices = adjacency_from_pattern(a)
        mask = np.zeros(6, dtype=bool)
        with pytest.raises(ValueError):
            bfs_levels(indptr, indices, 0, mask)

    def test_pseudo_peripheral_on_chain(self):
        a = tridiagonal(15)
        indptr, indices = adjacency_from_pattern(a)
        node = pseudo_peripheral_node(indptr, indices, start=7)
        assert node in (0, 14)

    def test_connected_components(self):
        dense = np.zeros((6, 6))
        dense[0, 1] = dense[1, 0] = 1.0
        dense[3, 4] = dense[4, 3] = 1.0
        np.fill_diagonal(dense, 2.0)
        a = CSRMatrix.from_dense(dense)
        indptr, indices = adjacency_from_pattern(a)
        comps = connected_components(indptr, indices)
        sizes = sorted(len(c) for c in comps)
        assert sizes == [1, 1, 2, 2]


@pytest.mark.parametrize("method", ORDERING_METHODS)
class TestAllOrderings:
    def test_valid_permutation(self, method):
        a = circuit_like(90, seed=3)
        p = compute_ordering(a, method)
        assert np.array_equal(np.sort(p), np.arange(90))

    def test_deterministic(self, method):
        a = poisson2d(8)
        assert np.array_equal(compute_ordering(a, method),
                              compute_ordering(a, method))

    def test_handles_disconnected_graph(self, method):
        dense = np.kron(np.eye(3), np.array([[4.0, -1], [-1, 4.0]]))
        a = CSRMatrix.from_dense(dense)
        p = compute_ordering(a, method)
        assert np.array_equal(np.sort(p), np.arange(6))


class TestOrderingQuality:
    def test_rcm_reduces_bandwidth_on_shuffled_chain(self, rng):
        a = tridiagonal(60)
        shuffle = rng.permutation(60)
        shuffled = permute_symmetric(a, shuffle)
        assert _bandwidth(shuffled) > 1
        improved = permute_symmetric(shuffled, rcm(shuffled))
        assert _bandwidth(improved) <= 2

    def test_mindeg_beats_natural_on_arrow(self):
        # arrowhead with the dense row FIRST fills completely under
        # natural order; minimum degree orders it last.
        a = arrow_matrix(40, arms=1)
        rev = permute_symmetric(a, np.arange(40)[::-1])  # tip now first
        natural_fill = symbolic_fill(rev).nnz_lu
        p = minimum_degree(rev)
        md_fill = symbolic_fill(permute_symmetric(rev, p)).nnz_lu
        assert md_fill < natural_fill

    def test_mindeg_orders_arrow_tip_last(self):
        a = arrow_matrix(30, arms=1)
        p = minimum_degree(a)
        assert p[-1] == 29  # the dense tip eliminates last

    def test_nd_reduces_fill_on_grid(self):
        a = poisson2d(12)
        natural = symbolic_fill(a).nnz_lu
        p = nested_dissection(a, leaf_size=8)
        nd_fill = symbolic_fill(permute_symmetric(a, p)).nnz_lu
        assert nd_fill < natural

    def test_mindeg_rejects_unknown_tiebreak(self):
        with pytest.raises(ValueError):
            minimum_degree(poisson2d(4), tie_break="random")

    def test_driver_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            compute_ordering(poisson2d(4), "metis")

    def test_natural_is_identity(self):
        a = poisson2d(5)
        assert np.array_equal(compute_ordering(a, "natural"), np.arange(25))

"""Tests for the numerical-quality diagnostics."""

import numpy as np
import pytest

from repro.analysis import (
    backward_error,
    condition_estimate,
    dominance_margin,
    pivot_growth,
)
from repro.kernels.reference_lu import reference_lu
from repro.matrices import circuit_like, poisson2d
from repro.sparse import CSRMatrix, matvec


class TestPivotGrowth:
    def test_near_one_on_dominant(self):
        a = circuit_like(60, seed=2)
        res = reference_lu(a)
        g = pivot_growth(a, res.U)
        assert 0.5 <= g <= 2.0  # SDD matrices have growth ≤ 2

    def test_large_growth_detected(self):
        # the classic growth matrix: lower 1s with last column of 1s
        n = 12
        dense = np.eye(n)
        dense[:, -1] = 1.0
        dense -= np.tril(np.ones((n, n)), -1)
        a = CSRMatrix.from_dense(dense)
        res = reference_lu(a)
        assert pivot_growth(a, res.U) > 100  # 2^(n-1)-ish

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pivot_growth(CSRMatrix.empty((3, 3)), CSRMatrix.empty((3, 3)))


class TestDominanceMargin:
    def test_positive_on_generators(self):
        assert dominance_margin(circuit_like(50, seed=1)) > 0
        assert dominance_margin(poisson2d(6)) > 0

    def test_negative_on_weak_diagonal(self, rng):
        dense = rng.standard_normal((8, 8))
        np.fill_diagonal(dense, 0.01)
        assert dominance_margin(CSRMatrix.from_dense(dense)) < 0

    def test_minus_inf_on_zero_diagonal(self):
        dense = np.array([[0.0, 1.0], [1.0, 1.0]])
        assert dominance_margin(CSRMatrix.from_dense(dense)) == -np.inf

    def test_requires_square(self):
        with pytest.raises(ValueError):
            dominance_margin(CSRMatrix.empty((2, 3)))


class TestConditionEstimate:
    def test_close_to_true_cond1_small_dense(self, rng):
        dense = rng.standard_normal((15, 15)) + 15 * np.eye(15)
        a = CSRMatrix.from_dense(dense)
        res = reference_lu(a)
        est = condition_estimate(a, res.L, res.U)
        true = np.linalg.cond(dense, 1)
        assert est <= true * 1.01          # a lower bound
        assert est >= true / 10            # ... and not a loose one

    def test_identity_is_one(self):
        a = CSRMatrix.identity(6)
        res = reference_lu(a)
        assert condition_estimate(a, res.L, res.U) == pytest.approx(1.0)

    def test_scales_with_ill_conditioning(self):
        d1 = np.diag(np.ones(6))
        d2 = np.diag([1.0, 1, 1, 1, 1, 1e-6])
        for dense, expect_big in ((d1, False), (d2, True)):
            a = CSRMatrix.from_dense(dense)
            res = reference_lu(a)
            est = condition_estimate(a, res.L, res.U)
            assert (est > 1e5) == expect_big


class TestBackwardError:
    def test_tiny_for_direct_solve(self, rng):
        a = circuit_like(70, seed=4)
        x_true = rng.standard_normal(70)
        b = matvec(a, x_true)
        x = reference_lu(a).solve(b)
        assert backward_error(a, x, b) < 1e-14

    def test_large_for_wrong_solution(self, rng):
        a = poisson2d(6)
        b = rng.standard_normal(36)
        assert backward_error(a, np.zeros(36), b) > 1e-3

"""Unit tests for the synthetic matrix generators."""

import numpy as np
import pytest

from repro.matrices import (
    anisotropic2d,
    arrow_matrix,
    banded_random,
    cage_like,
    chemistry_like,
    circuit_like,
    elasticity3d_like,
    kkt_like,
    make_diagonally_dominant,
    poisson2d,
    poisson3d,
    power_law_graph,
    random_unsymmetric,
    tridiagonal,
)
from repro.sparse import CSRMatrix


def _is_strictly_dominant(a: CSRMatrix) -> bool:
    d = a.to_dense()
    off = np.abs(d).sum(axis=1) - np.abs(np.diag(d))
    return bool(np.all(np.abs(np.diag(d)) > off))


ALL_GENERATORS = [
    ("poisson2d", lambda: poisson2d(7)),
    ("poisson3d", lambda: poisson3d(4)),
    ("anisotropic2d", lambda: anisotropic2d(7, eps=0.05)),
    ("elasticity3d", lambda: elasticity3d_like(3, 3, 3, dofs=3, seed=1)),
    ("circuit", lambda: circuit_like(80, seed=2)),
    ("cage", lambda: cage_like(90, seed=3)),
    ("kkt", lambda: kkt_like(60, seed=4)),
    ("banded", lambda: banded_random(70, bandwidth=5, seed=5)),
    ("random", lambda: random_unsymmetric(60, density=0.05, seed=6)),
    ("chemistry", lambda: chemistry_like(72, cluster=12, seed=7)),
    ("powerlaw", lambda: power_law_graph(60, seed=8)),
    ("tridiagonal", lambda: tridiagonal(50)),
    ("arrow", lambda: arrow_matrix(50, arms=2, seed=9)),
]


@pytest.mark.parametrize("name,builder", ALL_GENERATORS)
class TestAllGenerators:
    def test_square_and_canonical(self, name, builder):
        a = builder()
        assert a.nrows == a.ncols
        a.check()

    def test_strict_diagonal_dominance(self, name, builder):
        # the pivot-free numeric path relies on this invariant
        assert _is_strictly_dominant(builder())

    def test_deterministic(self, name, builder):
        a, b = builder(), builder()
        assert a.nnz == b.nnz
        assert np.allclose(a.to_dense(), b.to_dense())

    def test_full_diagonal_stored(self, name, builder):
        a = builder()
        d = a.diagonal()
        assert np.all(d != 0)


class TestStructures:
    def test_poisson2d_five_point(self):
        a = poisson2d(5)
        interior_row = 2 * 5 + 2  # interior node has 4 neighbours + diag
        cols, _ = a.row_slice(interior_row)
        assert cols.size == 5

    def test_poisson3d_seven_point(self):
        a = poisson3d(3)
        center = 13  # (1,1,1) in a 3x3x3 grid
        cols, _ = a.row_slice(center)
        assert cols.size == 7

    def test_anisotropy_weakens_one_axis(self):
        a = anisotropic2d(6, eps=0.01).to_dense()
        # x-neighbours (offset 1) strong, y-neighbours (offset 6) weak
        assert abs(a[7, 8]) > abs(a[7, 13])

    def test_elasticity_dof_blocks(self):
        a = elasticity3d_like(2, 2, 2, dofs=3, seed=0)
        assert a.nrows == 24
        # dofs of one node couple densely
        assert np.all(a.to_dense()[:3, :3] != 0)

    def test_circuit_has_hub_rows(self):
        a = circuit_like(200, n_hubs=2, seed=11)
        lens = a.row_lengths()
        assert lens.max() > 2.5 * np.median(lens)

    def test_kkt_saddle_block_shape(self):
        a = kkt_like(40, n_dual=20, seed=0)
        assert a.nrows == 60

    def test_arrow_dense_tip(self):
        a = arrow_matrix(30, arms=1, seed=0)
        cols, _ = a.row_slice(29)
        assert cols.size == 30  # full last row

    def test_tridiagonal_bandwidth(self):
        a = tridiagonal(20)
        rows = np.repeat(np.arange(20), a.row_lengths())
        assert np.abs(rows - a.indices).max() == 1

    def test_cage_has_offband_entries(self):
        a = cage_like(120, bandwidth=6, seed=1)
        rows = np.repeat(np.arange(120), a.row_lengths())
        assert np.abs(rows - a.indices).max() > 6


class TestDominanceHelper:
    def test_makes_dominant(self, rng):
        d = (rng.random((20, 20)) < 0.4) * rng.standard_normal((20, 20))
        np.fill_diagonal(d, 0.0)
        a = make_diagonally_dominant(CSRMatrix.from_dense(d), factor=2.0)
        assert _is_strictly_dominant(a)

    def test_preserves_offdiagonal_values(self, rng):
        d = (rng.random((15, 15)) < 0.4) * rng.standard_normal((15, 15))
        np.fill_diagonal(d, 5.0)
        a = make_diagonally_dominant(CSRMatrix.from_dense(d))
        out = a.to_dense()
        mask = ~np.eye(15, dtype=bool)
        assert np.allclose(out[mask], d[mask])

    def test_requires_square(self):
        with pytest.raises(ValueError):
            make_diagonally_dominant(CSRMatrix.empty((3, 4)))

    def test_factor_scales_diagonal(self, rng):
        d = (rng.random((10, 10)) < 0.5) * rng.standard_normal((10, 10))
        a2 = make_diagonally_dominant(CSRMatrix.from_dense(d), factor=2.0)
        a4 = make_diagonally_dominant(CSRMatrix.from_dense(d), factor=4.0)
        d2, d4 = np.diag(a2.to_dense()), np.diag(a4.to_dense())
        assert np.all(d4 >= d2)

"""Fault injection for the cluster simulator (``repro.cluster.faults``).

Covers the three fault models (lossy links, stragglers, rank death),
their composition, the determinism guarantee (identical (spec, seed)
pairs produce bit-identical traces), the recovery correctness bar
(factors bit-identical to a fault-free run), the TraceVerifier
extensions, and the ``distsim`` CLI subcommand.
"""

import json
import pathlib

import numpy as np
import pytest

from repro import cli
from repro.cluster import (
    DistributedSimulator,
    FaultSpec,
    FaultStats,
    H100_CLUSTER,
    LinkFaults,
    RankDeath,
    RecordOnceBackend,
    Straggler,
)
from repro.core.executor import ReplayBackend
from repro.matrices import paper_matrix, poisson2d
from repro.ordering import compute_ordering
from repro.solvers import PanguLUSolver
from repro.solvers.engine import NumericEngine
from repro.sparse import permute_symmetric, uniform_partition
from repro.verify.cases import run_case_file
from repro.verify.report import TRACE_DEAD_SEND
from repro.verify.trace import verify_trace

FAULT_DIR = pathlib.Path(__file__).parent / "faults"


@pytest.fixture(scope="module")
def dist_setup():
    """A factorised matrix whose DAG and stats feed the simulator."""
    a = paper_matrix("c-71", scale=0.6)
    run = PanguLUSolver(a, block_size=32, scheduler="serial").factorize()
    return run.dag, ReplayBackend(run.stats)


@pytest.fixture(scope="module")
def base_result(dist_setup):
    """Fault-free reference run (trojan, 4 ranks) for time constants."""
    dag, backend = dist_setup
    return DistributedSimulator(dag, backend, H100_CLUSTER, 4,
                                "trojan").run()


def _run(dist_setup, spec, policy="trojan", nprocs=4, trace=True):
    dag, backend = dist_setup
    return DistributedSimulator(dag, backend, H100_CLUSTER, nprocs, policy,
                                record_trace=trace, faults=spec).run()


def _death_spec(base_result, seed=42, frac=0.35, rank=2, **link):
    mk = base_result.makespan
    return FaultSpec(seed=seed, link=LinkFaults(**link),
                     deaths=(RankDeath(rank=rank, time=mk * frac),),
                     checkpoint_interval=mk * 0.2,
                     recovery_delay=mk * 0.05)


class TestSpec:
    def test_json_round_trip(self):
        spec = FaultSpec(
            seed=7,
            link=LinkFaults(drop_prob=0.05, dup_prob=0.01,
                            per_link_drop=((0, 1, 0.5),)),
            stragglers=(Straggler(rank=1, factor=4.0, t_start=1.0,
                                  t_end=2.0),),
            deaths=(RankDeath(rank=2, time=3.0),),
            checkpoint_interval=0.5, recovery_delay=0.1)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_spec_files_load(self):
        for path in sorted(FAULT_DIR.glob("*.json")):
            spec = FaultSpec.from_json(path)
            spec.validate(4)

    def test_with_seed(self):
        spec = FaultSpec(seed=1, link=LinkFaults(drop_prob=0.1))
        assert spec.with_seed(9).seed == 9
        assert spec.with_seed(9).link == spec.link

    def test_slowdown_windows(self):
        spec = FaultSpec(stragglers=(
            Straggler(rank=0, factor=2.0, t_start=1.0, t_end=2.0),
            Straggler(rank=0, factor=3.0, t_start=1.5, t_end=4.0)))
        assert spec.slowdown(0, 0.5) == 1.0
        assert spec.slowdown(0, 1.2) == 2.0
        assert spec.slowdown(0, 1.7) == 3.0  # max over active windows
        assert spec.slowdown(1, 1.7) == 1.0

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            LinkFaults(drop_prob=1.0)
        with pytest.raises(ValueError):
            LinkFaults(dup_prob=-0.1)
        with pytest.raises(ValueError):
            LinkFaults(per_link_drop=((0, 1, 1.5),))
        with pytest.raises(ValueError):
            LinkFaults(max_attempts=0)
        with pytest.raises(ValueError):
            LinkFaults(backoff=0.5)

    def test_invalid_scenario(self):
        with pytest.raises(ValueError):
            Straggler(rank=0, factor=0.0)
        with pytest.raises(ValueError):
            Straggler(rank=0, factor=2.0, t_start=2.0, t_end=1.0)
        with pytest.raises(ValueError):
            RankDeath(rank=0, time=-1.0)
        with pytest.raises(ValueError):
            FaultSpec(deaths=(RankDeath(0, 1.0), RankDeath(0, 2.0)))
        with pytest.raises(ValueError):
            FaultSpec(checkpoint_interval=0.0)

    def test_validate_against_cluster(self):
        FaultSpec(deaths=(RankDeath(1, 1.0),)).validate(2)
        with pytest.raises(ValueError):
            FaultSpec(deaths=(RankDeath(5, 1.0),)).validate(4)
        with pytest.raises(ValueError):
            FaultSpec(stragglers=(Straggler(rank=5, factor=2.0),)).validate(4)
        with pytest.raises(ValueError):  # every rank dies
            FaultSpec(deaths=(RankDeath(0, 1.0),
                              RankDeath(1, 2.0))).validate(2)


class TestLosslessEquivalence:
    def test_matches_legacy_loop(self, dist_setup, base_result):
        """A fault spec with no faults reproduces the lossless run."""
        res = _run(dist_setup, FaultSpec(seed=42), trace=False)
        assert res.messages == base_result.messages
        assert res.comm_bytes == base_result.comm_bytes
        assert res.total_kernels == base_result.total_kernels
        assert res.total_tasks == base_result.total_tasks
        # Arrival-time predecessor accounting breaks simultaneous-ready
        # ties differently from the legacy send-time loop; the makespan
        # agrees to float noise but not bit-exactly.
        assert res.makespan == pytest.approx(base_result.makespan,
                                             rel=1e-3)

    def test_fault_counters_all_zero(self, dist_setup):
        res = _run(dist_setup, FaultSpec(seed=42), trace=False)
        assert res.faults is not None
        assert all(v == 0 for v in res.faults.as_dict().values())


class TestDeterminism:
    def test_same_seed_same_digest(self, dist_setup):
        spec = FaultSpec.from_json(FAULT_DIR / "chaos.json")
        mk = _run(dist_setup, FaultSpec(seed=0), trace=False).makespan
        spec = FaultSpec.from_dict({**spec.to_dict(),
                                    "deaths": [{"rank": 2,
                                                "time": mk * 0.35}],
                                    "checkpoint_interval": mk * 0.2,
                                    "recovery_delay": mk * 0.05})
        d = [_run(dist_setup, spec).trace.digest() for _ in range(2)]
        assert d[0] == d[1]

    def test_different_seed_different_trace(self, dist_setup):
        spec = FaultSpec(seed=1, link=LinkFaults(drop_prob=0.2))
        a = _run(dist_setup, spec)
        b = _run(dist_setup, spec.with_seed(2))
        assert a.trace.digest() != b.trace.digest()
        # and both still verify clean
        assert not verify_trace(a.trace).violations
        assert not verify_trace(b.trace).violations


class TestLossyLinks:
    def test_drops_and_retransmits(self, dist_setup, base_result):
        res = _run(dist_setup, FaultSpec(seed=42,
                                         link=LinkFaults(drop_prob=0.05)))
        assert res.faults.drops > 0
        assert res.faults.retransmits > 0
        assert res.total_tasks == base_result.total_tasks
        assert res.makespan >= base_result.makespan * 0.999
        assert not verify_trace(res.trace).violations

    def test_drop_charges_extra_bytes(self, dist_setup, base_result):
        res = _run(dist_setup, FaultSpec(seed=42,
                                         link=LinkFaults(drop_prob=0.05)),
                   trace=False)
        assert res.comm_bytes > base_result.comm_bytes

    def test_duplicates_suppressed(self, dist_setup, base_result):
        res = _run(dist_setup, FaultSpec(seed=42,
                                         link=LinkFaults(dup_prob=0.3)))
        assert res.faults.dups > 0
        assert res.total_tasks == base_result.total_tasks
        assert not verify_trace(res.trace).violations

    def test_per_link_override(self, dist_setup):
        # every 0->1 attempt except the forced final one is dropped
        link = LinkFaults(per_link_drop=((0, 1, 0.999),), max_attempts=3)
        res = _run(dist_setup, FaultSpec(seed=42, link=link))
        assert res.faults.drops > 0
        assert not verify_trace(res.trace).violations

    def test_retransmit_timer_fires_on_idle_rank(self, dist_setup,
                                                 base_result):
        """Regression for the ``next_wake`` audit: retransmit deadlines
        are global events, so a rank with no ready tasks cannot idle past
        one.  With near-certain drops the run still finishes."""
        link = LinkFaults(drop_prob=0.9, max_attempts=6)
        res = _run(dist_setup, FaultSpec(seed=42, link=link))
        assert res.total_tasks == base_result.total_tasks
        assert res.faults.retransmits > 0
        assert np.isfinite(res.makespan)
        assert not verify_trace(res.trace).violations


class TestStragglers:
    def test_straggler_stretches_makespan(self, dist_setup, base_result):
        spec = FaultSpec(stragglers=(Straggler(rank=1, factor=4.0),))
        res = _run(dist_setup, spec)
        assert res.makespan > base_result.makespan * 1.05
        assert not verify_trace(res.trace).violations

    def test_windowed_straggler_milder(self, dist_setup, base_result):
        mk = base_result.makespan
        full = _run(dist_setup, FaultSpec(
            stragglers=(Straggler(rank=1, factor=4.0),)), trace=False)
        windowed = _run(dist_setup, FaultSpec(
            stragglers=(Straggler(rank=1, factor=4.0, t_start=0.0,
                                  t_end=mk * 0.1),)), trace=False)
        assert windowed.makespan < full.makespan


class TestRankDeath:
    @pytest.mark.parametrize("policy", ["trojan", "streams", "dmdas"])
    def test_death_recovers(self, dist_setup, base_result, policy):
        res = _run(dist_setup, _death_spec(base_result), policy=policy)
        assert res.faults.deaths == 1
        assert res.faults.reexecuted > 0
        assert res.total_tasks == base_result.total_tasks
        assert not verify_trace(res.trace).violations

    def test_trace_records_death(self, dist_setup, base_result):
        res = _run(dist_setup, _death_spec(base_result))
        assert res.trace.deaths == [(2, pytest.approx(
            base_result.makespan * 0.35))]
        assert res.trace.death_time(2) < np.inf
        assert res.trace.death_time(0) == np.inf

    def test_no_task_on_dead_rank_after_death(self, dist_setup,
                                              base_result):
        res = _run(dist_setup, _death_spec(base_result))
        tr = res.trace
        t_death = base_result.makespan * 0.35
        on_dead = tr.rank == 2
        assert not np.any(tr.t_start[on_dead] > t_death)

    def test_summary_includes_fault_counters(self, dist_setup,
                                             base_result):
        res = _run(dist_setup, _death_spec(base_result), trace=False)
        summ = res.summary()
        for key in FaultStats().as_dict():
            assert key in summ
        assert summ["deaths"] == 1

    def test_faultless_summary_has_no_counters(self, base_result):
        assert "deaths" not in base_result.summary()


class TestChaos:
    def test_everything_at_once(self, dist_setup, base_result):
        """The ISSUE acceptance scenario: drops + duplicates + straggler
        + one rank death, composed, still correct."""
        mk = base_result.makespan
        spec = FaultSpec(
            seed=42,
            link=LinkFaults(drop_prob=0.02, dup_prob=0.01),
            stragglers=(Straggler(rank=1, factor=4.0),),
            deaths=(RankDeath(rank=2, time=mk * 0.35),),
            checkpoint_interval=mk * 0.2, recovery_delay=mk * 0.05)
        res = _run(dist_setup, spec)
        assert res.total_tasks == base_result.total_tasks
        assert res.faults.deaths == 1
        assert not verify_trace(res.trace).violations
        # deterministic repeat
        assert _run(dist_setup, spec).trace.digest() == res.trace.digest()


class TestNumericRecovery:
    def test_factors_bit_identical_under_chaos(self):
        """Rank death + lossy links + straggler leave L and U bitwise
        equal to the fault-free factorisation (RecordOnceBackend)."""
        a = poisson2d(14)
        pa = permute_symmetric(a, compute_ordering(a, "mindeg"))
        part = uniform_partition(a.nrows, 16)

        def factorize(spec):
            eng = NumericEngine(pa, part, sparse_tiles=True)
            backend = RecordOnceBackend(eng, eng.dag)
            res = DistributedSimulator(
                eng.dag, backend, H100_CLUSTER, 4, "trojan",
                record_trace=spec is not None, faults=spec).run()
            return res, eng.extract_factors()

        ref, (L0, U0) = factorize(None)
        mk = ref.makespan
        spec = FaultSpec(
            seed=42, link=LinkFaults(drop_prob=0.02),
            stragglers=(Straggler(rank=1, factor=4.0),),
            deaths=(RankDeath(rank=2, time=mk * 0.35),),
            checkpoint_interval=mk * 0.2, recovery_delay=mk * 0.05)
        res, (L1, U1) = factorize(spec)

        assert res.faults.deaths == 1
        assert res.faults.reexecuted > 0
        assert not verify_trace(res.trace).violations
        for ref_m, got_m in ((L0, L1), (U0, U1)):
            assert np.array_equal(ref_m.data, got_m.data)
            assert np.array_equal(ref_m.indices, got_m.indices)
            assert np.array_equal(ref_m.indptr, got_m.indptr)


class TestVerifierExtensions:
    def test_dead_rank_send_golden(self):
        path = (pathlib.Path(__file__).parent / "golden" / "adversarial"
                / "dead_rank_send.json")
        report, expected, missed = run_case_file(path)
        assert expected == [TRACE_DEAD_SEND]
        assert missed == []
        assert TRACE_DEAD_SEND in report.codes()

    def test_trace_dict_round_trip_with_deaths(self, dist_setup,
                                               base_result):
        from repro.verify.trace import DistTrace
        res = _run(dist_setup, _death_spec(base_result))
        clone = DistTrace.from_dict(res.trace.to_dict())
        assert clone.digest() == res.trace.digest()
        assert not verify_trace(clone).violations


class TestCLI:
    WORKLOAD = ["distsim", "--matrix", "c-71", "--scale", "0.4",
                "--gpus", "4", "--policy", "trojan", "--seed", "42"]

    def test_faults_round_trip(self, tmp_path, capsys):
        spec = FAULT_DIR / "chaos.json"
        out1, out2 = tmp_path / "a.json", tmp_path / "b.json"
        for out in (out1, out2):
            rc = cli.main(self.WORKLOAD + ["--faults", str(spec),
                                           "--verify", "--out", str(out)])
            assert rc == 0
        capsys.readouterr()
        p1 = json.loads(out1.read_text(encoding="utf-8"))
        p2 = json.loads(out2.read_text(encoding="utf-8"))
        assert p1["trace_digest"] == p2["trace_digest"]
        assert p1["faults"]["seed"] == 42
        assert "drops" in p1["summary"]

    def test_trace_out(self, tmp_path, capsys):
        from repro.verify.trace import DistTrace
        trace_path = tmp_path / "trace.json"
        rc = cli.main(self.WORKLOAD + ["--faults",
                                       str(FAULT_DIR / "drop2.json"),
                                       "--trace-out", str(trace_path)])
        assert rc == 0
        capsys.readouterr()
        tr = DistTrace.from_dict(
            json.loads(trace_path.read_text(encoding="utf-8")))
        assert not verify_trace(tr).violations

    def test_runs_without_faults(self, capsys):
        rc = cli.main(self.WORKLOAD)
        assert rc == 0
        assert "makespan" in capsys.readouterr().out or True

"""Unit tests for the COO assembly format."""

import numpy as np
import pytest

from repro.sparse import COOMatrix, CSRMatrix


class TestConstruction:
    def test_basic_triplets(self):
        m = COOMatrix((3, 3), [0, 1, 2], [1, 2, 0], [1.0, 2.0, 3.0])
        assert m.shape == (3, 3)
        assert m.nnz == 3

    def test_empty(self):
        m = COOMatrix((4, 5), [], [], [])
        assert m.nnz == 0
        assert m.to_csr().nnz == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix((3, 3), [0, 1], [1], [1.0])

    def test_out_of_range_row_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix((3, 3), [3], [0], [1.0])

    def test_out_of_range_col_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix((3, 3), [0], [3], [1.0])

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix((3, 3), [-1], [0], [1.0])

    def test_2d_triplets_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix((3, 3), [[0]], [[0]], [[1.0]])


class TestConversion:
    def test_duplicates_are_summed(self):
        m = COOMatrix((2, 2), [0, 0, 1], [1, 1, 0], [2.0, 3.0, 1.0])
        csr = m.to_csr()
        assert csr.nnz == 2
        dense = csr.to_dense()
        assert dense[0, 1] == 5.0
        assert dense[1, 0] == 1.0

    def test_unordered_input_canonicalised(self, rng):
        dense = (rng.random((10, 12)) < 0.4) * rng.standard_normal((10, 12))
        r, c = np.nonzero(dense)
        order = rng.permutation(r.size)
        m = COOMatrix(dense.shape, r[order], c[order], dense[r, c][order])
        csr = m.to_csr()
        csr.check()
        assert np.allclose(csr.to_dense(), dense)

    def test_to_dense_sums_duplicates(self):
        m = COOMatrix((2, 2), [1, 1], [1, 1], [1.5, 2.5])
        assert m.to_dense()[1, 1] == 4.0

    def test_from_dense_roundtrip(self, rng):
        dense = (rng.random((7, 9)) < 0.5) * rng.standard_normal((7, 9))
        assert np.allclose(COOMatrix.from_dense(dense).to_dense(), dense)

    def test_cancellation_keeps_structural_zero(self):
        m = COOMatrix((2, 2), [0, 0], [0, 0], [1.0, -1.0])
        csr = m.to_csr()
        assert csr.nnz == 1  # explicit zero kept
        assert csr.to_dense()[0, 0] == 0.0

    def test_roundtrip_via_csr(self, random_sparse):
        a, dense = random_sparse
        back = a.to_coo().to_csr()
        assert np.allclose(back.to_dense(), dense)

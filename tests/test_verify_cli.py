"""``python -m repro verify``: exit codes and case handling."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.cli import main

REPO = pathlib.Path(__file__).resolve().parent.parent
ADVERSARIAL = REPO / "tests" / "golden" / "adversarial"
CASES = sorted(ADVERSARIAL.glob("*.json"))


def test_adversarial_cases_exist():
    names = {p.name for p in CASES}
    assert names == {"reversed_dep.json", "dropped_task.json",
                     "write_conflict.json", "over_budget.json",
                     "unmatched_send.json", "dead_rank_send.json",
                     "solve_update_before_diag.json",
                     "solve_rhs_write_conflict.json"}


@pytest.mark.parametrize("case", CASES, ids=lambda p: p.stem)
def test_adversarial_case_exits_nonzero(case, capsys):
    code = main(["verify", "--case", str(case)])
    out = capsys.readouterr().out
    assert code == 1, out
    expected = json.loads(case.read_text(encoding="utf-8"))["expect"]
    for want in expected:
        assert want in out


def test_case_expectations_all_met():
    from repro.verify.cases import run_case_file

    for case in CASES:
        report, expected, missed = run_case_file(case)
        assert expected, case.name
        assert not missed, \
            f"{case.name} missed expected codes {missed}: " \
            f"{report.describe()}"


def test_trace_case_fast_and_standalone(capsys):
    # the trace case needs no scheduler run: cheap enough to assert the
    # printed report precisely
    code = main(["verify", "--case",
                 str(ADVERSARIAL / "unmatched_send.json")])
    out = capsys.readouterr().out
    assert code == 1
    assert "TRACE_UNMATCHED_SEND" in out
    assert "never received" in out


def test_lint_only_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "fine.py").write_text("x = 1\n", encoding="utf-8")
    code = main(["verify", "--no-golden", "--lint-root", str(tmp_path)])
    assert code == 0
    assert "ok" in capsys.readouterr().out


def test_lint_violation_exits_one(tmp_path, capsys):
    bad = tmp_path / "sparse"
    bad.mkdir()
    (bad / "loopy.py").write_text(
        "def f(m):\n    for c in m.indices:\n        pass\n",
        encoding="utf-8")
    code = main(["verify", "--no-golden", "--lint-root", str(tmp_path)])
    assert code == 1
    assert "LINT_NNZ_LOOP" in capsys.readouterr().out


def test_missing_golden_file_is_an_error(tmp_path):
    with pytest.raises(SystemExit):
        main(["verify", "--no-lint",
              "--golden", str(tmp_path / "nope.json")])


def test_weakened_check_exit_two(tmp_path, capsys):
    # a case whose expected code can never fire (valid trace) must exit
    # 2 — the "analyzer silently weakened" signal for CI
    case = {
        "kind": "trace",
        "expect": ["TRACE_UNMATCHED_SEND"],
        "trace": {
            "nprocs": 1,
            "tasks": [{"tid": 0, "rank": 0,
                       "t_start": 0.0, "t_done": 1.0}],
            "edges": [],
            "sends": [],
        },
    }
    path = tmp_path / "weak.json"
    path.write_text(json.dumps(case), encoding="utf-8")
    code = main(["verify", "--case", str(path)])
    assert code == 2
    assert "MISSED" in capsys.readouterr().out

"""Tests for the pattern-keyed symbolic-analysis cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.analysis_cache import (
    AnalysisCache,
    pattern_digest,
    partition_digest,
)
from repro.matrices.generators import circuit_like, poisson2d
from repro.solvers import PanguLUSolver, SuperLUSolver
from repro.solvers.engine import NumericEngine
from repro.sparse import CSRMatrix, uniform_partition


# ----------------------------------------------------------------------
# LRU mechanics
# ----------------------------------------------------------------------
def test_hit_miss_accounting():
    cache = AnalysisCache(capacity=4)
    calls = []

    def factory(v):
        return lambda: calls.append(v) or v

    assert cache.get_or_compute("a", factory(1)) == 1
    assert cache.get_or_compute("a", factory(99)) == 1  # hit: factory unused
    assert cache.get_or_compute("b", factory(2)) == 2
    assert calls == [1, 2]
    assert cache.hits == 1
    assert cache.misses == 2
    assert cache.hit_rate == pytest.approx(1 / 3)
    stats = cache.stats()
    assert stats["entries"] == 2
    assert stats["evictions"] == 0


def test_eviction_at_capacity_is_lru():
    cache = AnalysisCache(capacity=2)
    cache.get_or_compute("a", lambda: 1)
    cache.get_or_compute("b", lambda: 2)
    cache.get_or_compute("a", lambda: 0)     # touch "a": "b" becomes LRU
    cache.get_or_compute("c", lambda: 3)     # evicts "b"
    assert cache.evictions == 1
    assert len(cache) == 2
    assert "a" in cache and "c" in cache
    assert "b" not in cache
    # recomputing "b" is a miss again
    assert cache.get_or_compute("b", lambda: 20) == 20


def test_clear_resets_everything():
    cache = AnalysisCache(capacity=2)
    cache.get_or_compute("a", lambda: 1)
    cache.get_or_compute("a", lambda: 1)
    cache.clear()
    assert len(cache) == 0
    assert cache.hits == cache.misses == cache.evictions == 0
    assert cache.hit_rate == 0.0


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        AnalysisCache(capacity=0)


# ----------------------------------------------------------------------
# digest collision guards
# ----------------------------------------------------------------------
def test_equal_shape_different_pattern_never_collides():
    # same shape, same nnz, different column indices
    a = CSRMatrix((3, 3), [0, 2, 3, 4], [0, 1, 1, 2], np.ones(4))
    b = CSRMatrix((3, 3), [0, 2, 3, 4], [0, 2, 1, 2], np.ones(4))
    # same shape, same indices array, different row split
    c = CSRMatrix((3, 3), [0, 1, 3, 4], [0, 1, 1, 2], np.ones(4))
    digests = {pattern_digest(m) for m in (a, b, c)}
    assert len(digests) == 3


def test_values_do_not_affect_the_digest():
    a = CSRMatrix((3, 3), [0, 2, 3, 4], [0, 1, 1, 2], np.ones(4))
    b = CSRMatrix((3, 3), [0, 2, 3, 4], [0, 1, 1, 2], np.arange(4) + 5.0)
    assert pattern_digest(a) == pattern_digest(b)


def test_partition_digest_distinguishes_boundaries():
    assert (partition_digest(uniform_partition(64, 8))
            != partition_digest(uniform_partition(64, 16)))
    assert (partition_digest(uniform_partition(64, 8))
            == partition_digest(uniform_partition(64, 8)))


def test_different_patterns_fill_separately():
    cache = AnalysisCache(capacity=8)
    a = poisson2d(8)
    b = circuit_like(64, seed=1)
    calls = {"n": 0}

    def fill_of(m):
        def compute():
            calls["n"] += 1
            return ("fill", m.nnz, calls["n"])
        return cache.fill_for(m, compute)

    fa = fill_of(a)
    fb = fill_of(b)
    assert fa != fb
    assert calls["n"] == 2
    assert cache.misses == 2 and cache.hits == 0


# ----------------------------------------------------------------------
# solver wiring
# ----------------------------------------------------------------------
def test_pangulu_repeated_pattern_hits_cache():
    cache = AnalysisCache(capacity=8)
    a = circuit_like(120, seed=3)
    PanguLUSolver(a, block_size=16, analysis_cache=cache).factorize()
    first = cache.stats()
    assert first["hits"] == 0 and first["misses"] >= 1

    # same pattern again: the whole block analysis is served from cache
    PanguLUSolver(circuit_like(120, seed=3), block_size=16,
                  analysis_cache=cache).factorize()
    second = cache.stats()
    assert second["hits"] == first["misses"]
    assert second["misses"] == first["misses"]


def test_superlu_caches_fill_and_block_analysis():
    cache = AnalysisCache(capacity=8)
    a = poisson2d(10)
    SuperLUSolver(a, analysis_cache=cache).factorize()
    assert cache.misses >= 2  # element fill + block analysis
    SuperLUSolver(poisson2d(10), analysis_cache=cache).factorize()
    assert cache.hits == cache.misses  # everything reused


def test_cached_factorization_matches_uncached():
    a = circuit_like(120, seed=3)
    cached = PanguLUSolver(a, block_size=16,
                           analysis_cache=AnalysisCache(capacity=4))
    plain = PanguLUSolver(circuit_like(120, seed=3), block_size=16,
                          analysis_cache=None)
    # warm the cache, then factorize a second same-pattern solver from it
    shared = cached.analysis_cache
    cached.factorize()
    warm = PanguLUSolver(circuit_like(120, seed=3), block_size=16,
                         analysis_cache=shared)
    r_warm = warm.factorize()
    r_plain = plain.factorize()
    assert np.array_equal(r_warm.L.indptr, r_plain.L.indptr)
    assert np.array_equal(r_warm.L.indices, r_plain.L.indices)
    np.testing.assert_allclose(r_warm.L.data, r_plain.L.data,
                               rtol=1e-12, atol=0)
    np.testing.assert_allclose(r_warm.U.data, r_plain.U.data,
                               rtol=1e-12, atol=0)
    b = np.ones(120)
    res = np.linalg.norm(a @ r_warm.solve(b) - b) / np.linalg.norm(b)
    assert res < 1e-8


def test_distributed_engine_bypasses_cache():
    # ownership is baked into the tasks, so distributed analyses must
    # not be shared through the pattern-keyed cache
    cache = AnalysisCache(capacity=8)
    a = poisson2d(8)
    part = uniform_partition(a.nrows, 8)
    NumericEngine(a, part, owner_of=lambda i, j: 0, cache=cache)
    assert cache.hits == 0 and cache.misses == 0 and len(cache) == 0


def test_solver_cache_disabled_with_none():
    a = poisson2d(8)
    solver = PanguLUSolver(a, block_size=8, analysis_cache=None)
    assert solver.analysis_cache is None
    solver.factorize()  # must work without any cache


# ----------------------------------------------------------------------
# thread safety
# ----------------------------------------------------------------------
def test_reset_is_clear_alias():
    cache = AnalysisCache(capacity=2)
    cache.get_or_compute("a", lambda: 1)
    cache.reset()
    assert len(cache) == 0
    assert cache.stats()["hits"] == cache.stats()["misses"] == 0


def test_stats_snapshot_is_consistent():
    cache = AnalysisCache(capacity=2)
    cache.get_or_compute("a", lambda: 1)
    cache.get_or_compute("a", lambda: 1)
    cache.get_or_compute("b", lambda: 2)
    cache.get_or_compute("c", lambda: 3)   # evicts "a"
    stats = cache.stats()
    # every miss inserted one entry; entries still present = inserts − evictions
    assert stats["hits"] + stats["misses"] == 4
    assert stats["entries"] == stats["misses"] - stats["evictions"]


def test_concurrent_hammer_keeps_invariants():
    """Hammer one cache from many threads (the solver-server usage).

    Without the internal lock the OrderedDict mutates mid-iteration and
    the counters drop updates; with it, every per-thread lookup count is
    preserved and the LRU invariants hold at the end.
    """
    import threading

    cache = AnalysisCache(capacity=8)
    n_threads, n_ops, n_keys = 8, 300, 16
    wrong = []
    barrier = threading.Barrier(n_threads)

    def worker(seed: int) -> None:
        local = np.random.default_rng(seed)
        barrier.wait()
        for _ in range(n_ops):
            key = f"k{local.integers(0, n_keys)}"
            value = cache.get_or_compute(key, lambda k=key: ("v", k))
            if value != ("v", key):
                wrong.append((key, value))

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not wrong
    stats = cache.stats()
    assert stats["hits"] + stats["misses"] == n_threads * n_ops
    assert stats["entries"] == len(cache) <= 8
    assert stats["entries"] == stats["misses"] - stats["evictions"]

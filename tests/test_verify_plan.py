"""Whole-plan static certification (``repro.verify.plan``).

Covers the four analysis passes on hand-written plans, the
owner-compute clean path on real factorisation DAGs, the shared
effect-footprint layer's bit-identity with the executor's hazard
targets, the golden plan case files under ``tests/golden/plans``, and
the static/dynamic twin contract: every dynamic adversarial catch is
either caught statically or documented ``DYNAMIC_ONLY``.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.cluster import FaultSpec, ProcessGrid
from repro.core import build_block_dag
from repro.matrices import poisson2d
from repro.sparse import uniform_partition
from repro.symbolic import block_fill
from repro.verify import report as rep
from repro.verify.cases import load_case, run_case_file
from repro.verify.effects import atomic_write_targets, effect_footprints
from repro.verify.plan import (
    DYNAMIC_ONLY,
    STATIC_TWIN,
    PlanSpec,
    PlanVerifier,
    verify_plan,
)

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
PLAN_CASES = sorted((GOLDEN_DIR / "plans").glob("*.json"))
ADVERSARIAL = sorted((GOLDEN_DIR / "adversarial").glob("*.json"))


@pytest.fixture(scope="module")
def dag():
    a = poisson2d(16)
    part = uniform_partition(a.nrows, 8)
    return build_block_dag(block_fill(a, part), part)


def plan_of(tasks, edges, nprocs=2, nb=2, **kw):
    return PlanSpec.from_dict({
        "nprocs": nprocs, "nb": nb, "tasks": tasks, "edges": edges, **kw})


# ---------------------------------------------------------------------
# effect layer: one definition shared with the executor
# ---------------------------------------------------------------------
class TestEffectLayer:
    def test_targets_bit_identical_to_task_arrays(self, dag):
        arrays = dag.task_arrays()
        recomputed = atomic_write_targets(
            arrays.type_code, arrays.i, arrays.j, dag.part.nblocks)
        np.testing.assert_array_equal(arrays.target, recomputed)

    def test_footprints_cover_every_task(self, dag):
        fp = effect_footprints(dag)
        assert fp.write_tile.shape == (dag.n_tasks,)
        assert fp.read_owner.shape == fp.read_tile.shape
        # every read endpoint is a real task and a real tile
        assert (fp.read_owner >= 0).all()
        assert (fp.read_owner < dag.n_tasks).all()
        assert (fp.read_tile >= 0).all()
        assert (fp.read_tile < fp.ntiles).all()


# ---------------------------------------------------------------------
# clean path: owner-compute plans of real DAGs certify clean
# ---------------------------------------------------------------------
class TestCleanPlans:
    @pytest.mark.parametrize("nprocs", [1, 4, 8])
    def test_owner_compute_is_clean(self, dag, nprocs):
        plan = PlanSpec.from_dag(dag, ProcessGrid(nprocs))
        report = verify_plan(plan)
        assert report.ok, report.describe()

    @pytest.mark.parametrize(
        "fixture",
        sorted((pathlib.Path(__file__).parent / "faults").glob("*.json")),
        ids=lambda p: p.stem)
    def test_fault_fixtures_certify_clean(self, dag, fixture):
        plan = PlanSpec.from_dag(
            dag, ProcessGrid(8), faults=FaultSpec.from_json(fixture),
            mem_budget_bytes=64e9)
        report = verify_plan(plan)
        assert report.ok, report.describe()
        assert "memory" in report.checks

    def test_empty_plan(self):
        plan = plan_of([], [], nprocs=1, nb=1)
        assert verify_plan(plan).ok


# ---------------------------------------------------------------------
# race pass: vector-clock happens-before
# ---------------------------------------------------------------------
class TestRaces:
    def test_cross_rank_ww_unordered(self):
        plan = plan_of(
            [{"type": "GETRF", "i": 0, "j": 0, "k": 0, "rank": 0},
             {"type": "GETRF", "i": 0, "j": 0, "k": 0, "rank": 1}],
            [])
        assert rep.PLAN_RACE_WW in verify_plan(plan).codes()

    def test_message_edge_orders_the_pair(self):
        # same write pair, but now a DAG edge (a message) orders them
        plan = plan_of(
            [{"type": "GETRF", "i": 0, "j": 0, "k": 0, "rank": 0},
             {"type": "GETRF", "i": 0, "j": 0, "k": 0, "rank": 1}],
            [[0, 1]])
        assert rep.PLAN_RACE_WW not in verify_plan(plan).codes()

    def test_transitive_ordering_via_third_rank(self):
        # 0 -> relay on rank 2 -> 1: ordered only transitively, which
        # per-edge reasoning would miss but vector clocks carry
        plan = plan_of(
            [{"type": "GETRF", "i": 0, "j": 0, "k": 0, "rank": 0},
             {"type": "GETRF", "i": 0, "j": 0, "k": 0, "rank": 1},
             {"type": "TSTRF", "i": 1, "j": 0, "k": 0, "rank": 2}],
            [[0, 2], [2, 1]], nprocs=3)
        assert verify_plan(plan).ok

    def test_cross_rank_rw_unordered(self):
        plan = plan_of(
            [{"type": "GETRF", "i": 0, "j": 0, "k": 0, "rank": 0},
             {"type": "TSTRF", "i": 1, "j": 0, "k": 0, "rank": 1}],
            [])
        assert rep.PLAN_RACE_RW in verify_plan(plan).codes()

    def test_same_rank_program_order_suffices(self):
        # no DAG edge, but both tasks on one rank: program order is HB
        plan = plan_of(
            [{"type": "GETRF", "i": 0, "j": 0, "k": 0, "rank": 0},
             {"type": "TSTRF", "i": 1, "j": 0, "k": 0, "rank": 0}],
            [])
        assert verify_plan(plan).ok

    def test_atomic_escape_not_honored_cross_rank(self):
        # two SSSSMs into one tile: atomic on one device, but the
        # serial-apply guarantee does not span ranks
        plan = plan_of(
            [{"type": "SSSSM", "i": 1, "j": 1, "k": 0, "rank": 0},
             {"type": "SSSSM", "i": 1, "j": 1, "k": 0, "rank": 1}],
            [])
        assert rep.PLAN_RACE_WW in verify_plan(plan).codes()


# ---------------------------------------------------------------------
# liveness pass: wait cycles, orphans, dead ranks
# ---------------------------------------------------------------------
class TestLiveness:
    def test_cross_rank_wait_cycle(self):
        plan = plan_of(
            [{"type": "TSTRF", "i": 1, "j": 0, "k": 0, "rank": 0},
             {"type": "GETRF", "i": 1, "j": 1, "k": 1, "rank": 0},
             {"type": "TSTRF", "i": 2, "j": 1, "k": 1, "rank": 1},
             {"type": "GETRF", "i": 0, "j": 0, "k": 0, "rank": 1}],
            [[3, 0], [1, 2]], nb=3,
            order=[[0, 1], [2, 3]])
        report = verify_plan(plan)
        assert report.codes() == {rep.PLAN_WAIT_CYCLE}

    def test_same_edges_different_order_is_clean(self):
        # identical DAG; swapping rank 1's program order breaks the cycle
        plan = plan_of(
            [{"type": "TSTRF", "i": 1, "j": 0, "k": 0, "rank": 0},
             {"type": "GETRF", "i": 1, "j": 1, "k": 1, "rank": 0},
             {"type": "TSTRF", "i": 2, "j": 1, "k": 1, "rank": 1},
             {"type": "GETRF", "i": 0, "j": 0, "k": 0, "rank": 1}],
            [[3, 0], [1, 2]], nb=3,
            order=[[0, 1], [3, 2]])
        assert verify_plan(plan).ok

    def test_orphaned_send_and_missing_task(self):
        plan = plan_of(
            [{"type": "GETRF", "i": 0, "j": 0, "k": 0, "rank": 0},
             {"type": "TSTRF", "i": 1, "j": 0, "k": 0, "rank": 1}],
            [[0, 1]], order=[[0], []])
        codes = verify_plan(plan).codes()
        assert rep.PLAN_ORPHAN_SEND in codes
        assert rep.TASK_MISSING in codes

    def test_orphaned_recv(self):
        plan = plan_of(
            [{"type": "GETRF", "i": 0, "j": 0, "k": 0, "rank": 0},
             {"type": "TSTRF", "i": 1, "j": 0, "k": 0, "rank": 1}],
            [[0, 1]], order=[[], [1]])
        assert rep.PLAN_ORPHAN_RECV in verify_plan(plan).codes()

    def test_dead_rank_without_checkpointing(self):
        plan = plan_of(
            [{"type": "GETRF", "i": 0, "j": 0, "k": 0, "rank": 0},
             {"type": "TSTRF", "i": 1, "j": 0, "k": 0, "rank": 1}],
            [[0, 1]],
            faults={"deaths": [{"rank": 1, "time": 1e-3}],
                    "checkpoint_interval": None})
        assert rep.PLAN_DEAD_SEND in verify_plan(plan).codes()
        assert plan.checkpointing is False

    def test_dead_rank_with_checkpointing_is_clean(self):
        # same death, but checkpoint re-homing recovers the rank
        plan = plan_of(
            [{"type": "GETRF", "i": 0, "j": 0, "k": 0, "rank": 0},
             {"type": "TSTRF", "i": 1, "j": 0, "k": 0, "rank": 1}],
            [[0, 1]],
            faults={"deaths": [{"rank": 1, "time": 1e-3}],
                    "checkpoint_interval": 1e-4})
        assert verify_plan(plan).ok
        assert plan.checkpointing is True

    def test_duplicate_and_unknown_ids(self):
        plan = plan_of(
            [{"type": "GETRF", "i": 0, "j": 0, "k": 0, "rank": 0}],
            [], order=[[0, 0, 7], []])
        codes = verify_plan(plan).codes()
        assert rep.TASK_DUPLICATE in codes
        assert rep.TASK_UNKNOWN in codes


# ---------------------------------------------------------------------
# effects + memory passes
# ---------------------------------------------------------------------
class TestEffectsAndMemory:
    def test_effect_edge_on_disjoint_footprints(self):
        plan = plan_of(
            [{"type": "GETRF", "i": 0, "j": 0, "k": 0, "rank": 0},
             {"type": "GETRF", "i": 2, "j": 2, "k": 2, "rank": 0}],
            [[0, 1]], nprocs=1, nb=3)
        assert rep.PLAN_EFFECT_EDGE in verify_plan(plan).codes()

    def test_justified_edge_is_clean(self):
        plan = plan_of(
            [{"type": "GETRF", "i": 0, "j": 0, "k": 0, "rank": 0},
             {"type": "TSTRF", "i": 1, "j": 0, "k": 0, "rank": 0}],
            [[0, 1]], nprocs=1)
        assert verify_plan(plan).ok

    def test_hwm_counts_received_tiles(self):
        # rank 1 owns 500 B of factors (fits) but the received remote
        # panel (800 B) pushes the worst-case high-water mark to 1300 B
        plan = plan_of(
            [{"type": "GETRF", "i": 0, "j": 0, "k": 0, "nnz": 100,
              "rank": 0},
             {"type": "TSTRF", "i": 1, "j": 0, "k": 0, "nnz": 50,
              "rank": 1}],
            [[0, 1]], mem_budget_bytes=1000)
        report = verify_plan(plan)
        assert report.codes() == {rep.PLAN_MEM_HWM}
        [v] = report.by_code(rep.PLAN_MEM_HWM)
        assert v.rank == 1

    def test_received_tiles_deduplicated_per_rank(self):
        # two consumers of one remote tile on the same rank hold ONE
        # resident copy, so 500 + 800 stays within a 1400 B budget
        plan = plan_of(
            [{"type": "GETRF", "i": 0, "j": 0, "k": 0, "nnz": 100,
              "rank": 0},
             {"type": "TSTRF", "i": 1, "j": 0, "k": 0, "nnz": 25,
              "rank": 1},
             {"type": "GEESM", "i": 0, "j": 1, "k": 0, "nnz": 25,
              "rank": 1}],
            [[0, 1], [0, 2]], mem_budget_bytes=1400)
        assert verify_plan(plan).ok

    def test_no_budget_skips_memory_pass(self):
        plan = plan_of(
            [{"type": "GETRF", "i": 0, "j": 0, "k": 0, "nnz": 10**9,
              "rank": 0}], [])
        report = verify_plan(plan)
        assert report.ok
        assert "memory" not in report.checks


# ---------------------------------------------------------------------
# golden plan cases + the static/dynamic twin contract
# ---------------------------------------------------------------------
class TestGoldenPlans:
    def test_plan_case_files_exist(self):
        assert len(PLAN_CASES) >= 4

    @pytest.mark.parametrize("path", PLAN_CASES, ids=lambda p: p.stem)
    def test_case_reports_exactly_expected_codes(self, path):
        report, expected, missed = run_case_file(path)
        assert not missed, f"{path.name} missed {missed}"
        assert report.codes() == set(expected), report.describe()

    def test_twin_map_covers_dynamic_codes(self):
        """Every trace-kind adversarial expectation is either caught
        statically (its STATIC_TWIN code is exercised by a plan golden)
        or documented DYNAMIC_ONLY."""
        plan_codes = set()
        for path in PLAN_CASES:
            plan_codes.update(load_case(path)["expect"])
        for path in ADVERSARIAL:
            case = load_case(path)
            if case.get("kind") != "trace":
                continue
            for code in case["expect"]:
                assert code in DYNAMIC_ONLY or code in STATIC_TWIN, \
                    f"{path.name}: {code} has no static twin and is " \
                    "not documented DYNAMIC_ONLY"
                if code in STATIC_TWIN:
                    assert STATIC_TWIN[code] in plan_codes, \
                        f"twin {STATIC_TWIN[code]} of {code} is not " \
                        "exercised by any golden plan"

    def test_dynamic_only_is_disjoint_from_twins(self):
        assert not DYNAMIC_ONLY & set(STATIC_TWIN)


# ---------------------------------------------------------------------
# simulator precondition wiring
# ---------------------------------------------------------------------
class TestCertifyPrecondition:
    def test_certified_simulation_runs(self):
        from repro.cluster import H100_CLUSTER, banded_block_dag
        from repro.core.executor import EstimateBackend

        sim_dag = banded_block_dag(12, 3)
        res = __import__("repro.cluster.distsim", fromlist=["x"]) \
            .DistributedSimulator(
                sim_dag, EstimateBackend(), H100_CLUSTER, 4, "trojan",
                certify=True).run()
        assert res.summary()["time_s"] > 0

    def test_certify_rejects_undersized_budget(self):
        """A cluster whose per-rank budget cannot hold the plan fails
        the precondition before any event fires."""
        import dataclasses

        from repro.cluster import H100_CLUSTER, banded_block_dag
        from repro.cluster.distsim import DistributedSimulator
        from repro.core.executor import EstimateBackend

        tiny_gpu = dataclasses.replace(
            H100_CLUSTER.gpu, memory_gb=1e-6)
        tiny = dataclasses.replace(H100_CLUSTER, gpu=tiny_gpu)
        sim_dag = banded_block_dag(12, 3)
        sim = DistributedSimulator(
            sim_dag, EstimateBackend(), tiny, 4, "trojan", certify=True)
        with pytest.raises(AssertionError, match="PLAN_MEM_HWM"):
            sim.run()


# ---------------------------------------------------------------------
# JSON round-trip details
# ---------------------------------------------------------------------
class TestPlanSpecParsing:
    def test_rank_defaults_to_grid_owner(self):
        plan = PlanSpec.from_dict({
            "nprocs": 4, "nb": 2, "grid": {"pr": 2, "pc": 2},
            "tasks": [{"type": "GETRF", "i": 1, "j": 1, "k": 1}],
            "edges": []})
        assert plan.rank[0] == ProcessGrid(4, 2, 2).owner(1, 1)

    def test_golden_files_are_valid_json_plans(self):
        for path in PLAN_CASES:
            case = json.loads(path.read_text(encoding="utf-8"))
            assert case["kind"] == "plan"
            assert case["expect"], path.name
            PlanSpec.from_dict(case["plan"])  # must parse

    def test_order_must_match_nprocs(self):
        with pytest.raises(ValueError):
            plan_of([{"type": "GETRF", "i": 0, "j": 0, "k": 0,
                      "rank": 0}], [], order=[[0]])


# ---------------------------------------------------------------------
# golden plan from a *real* multiprocess execution
# ---------------------------------------------------------------------
class TestExecutionGolden:
    """The plan the ParallelExecutor actually dispatched, round-tripped
    through the golden JSON format, must still certify clean — tying the
    static format to the real engine rather than hand-written fixtures."""

    @pytest.fixture(scope="class")
    def executed(self):
        from repro.parallel import ParallelExecutor

        a = poisson2d(12)
        with ParallelExecutor(a, workers=4, block_size=24) as ex:
            res = ex.factorize()
        return res

    def test_dispatched_plan_certifies_clean(self, executed):
        report = verify_plan(executed.plan, subject="executed")
        assert report.ok, report.describe()

    def test_round_trip_certifies_clean(self, executed):
        payload = json.loads(json.dumps(executed.plan.to_dict()))
        back = PlanSpec.from_dict(payload)
        assert verify_plan(back, subject="round-trip").ok
        assert back.nprocs == executed.plan.nprocs
        np.testing.assert_array_equal(back.type_code,
                                      executed.plan.type_code)
        np.testing.assert_array_equal(back.rank, executed.plan.rank)
        for mine, theirs in zip(back.order, executed.plan.order):
            np.testing.assert_array_equal(mine, theirs)

    def test_execution_order_covers_every_task_once(self, executed):
        # the execution order is the scheduler's, not from_dag's
        # level-schedule linearisation; it must still be a permutation
        # of the DAG (and certify — asserted above) on the same ranks
        canonical = PlanSpec.from_dag(executed.dag, executed.grid)
        assert verify_plan(canonical).ok
        np.testing.assert_array_equal(canonical.rank, executed.plan.rank)
        flat = np.concatenate(executed.plan.order)
        assert np.array_equal(np.sort(flat),
                              np.arange(executed.dag.n_tasks))

    def test_from_execution_rejects_partial_cover(self, executed):
        from repro.verify.plan import PlanSpec as PS

        batches = [b for b in executed.batch_plan.batches[:-1]]
        with pytest.raises(ValueError, match="exactly once"):
            PS.from_execution(executed.dag, executed.grid, batches)

"""Unit tests for the paper-matrix analogues (Tables 2 and 4)."""

import numpy as np
import pytest

from repro.matrices import (
    PAPER_MATRICES,
    SCALE_OUT_NAMES,
    SCALE_UP_NAMES,
    paper_matrix,
    paper_matrix_info,
)


class TestInventory:
    def test_all_ten_matrices_present(self):
        assert set(SCALE_UP_NAMES + SCALE_OUT_NAMES) == set(PAPER_MATRICES)
        assert len(PAPER_MATRICES) == 10

    def test_scale_up_group_membership(self):
        for name in SCALE_UP_NAMES:
            assert paper_matrix_info(name).group == "scale-up"

    def test_scale_out_group_membership(self):
        for name in SCALE_OUT_NAMES:
            assert paper_matrix_info(name).group == "scale-out"

    def test_paper_metadata_matches_table2(self):
        info = paper_matrix_info("cage12")
        assert info.paper_n == 130e3
        assert info.paper_nnz == 2.03e6
        assert info.paper_lu_superlu == 550e6

    def test_paper_metadata_matches_table4(self):
        info = paper_matrix_info("Serena")
        assert info.paper_n == 1.39e6
        assert info.paper_lu_pangulu == 5.38e9


@pytest.mark.parametrize("name", sorted(PAPER_MATRICES))
class TestAnalogues:
    def test_builds_square_canonical(self, name):
        a = paper_matrix(name)
        assert a.nrows == a.ncols
        a.check()

    def test_deterministic(self, name):
        a, b = paper_matrix(name), paper_matrix(name)
        assert a.nnz == b.nnz
        assert np.array_equal(a.indices, b.indices)

    def test_reasonable_analogue_size(self, name):
        a = paper_matrix(name)
        assert 400 <= a.nrows <= 2000

    def test_diagonally_dominant(self, name):
        a = paper_matrix(name)
        d = a.to_dense()
        off = np.abs(d).sum(axis=1) - np.abs(np.diag(d))
        assert np.all(np.abs(np.diag(d)) > off)


class TestScaling:
    def test_scale_grows_matrix(self):
        small = paper_matrix("c-71", scale=0.5)
        big = paper_matrix("c-71", scale=1.5)
        assert small.nrows < big.nrows

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            paper_matrix("not-a-matrix")

    def test_scale_out_larger_than_scale_up_on_average(self):
        up = np.mean([paper_matrix(n).nrows for n in SCALE_UP_NAMES])
        out = np.mean([paper_matrix(n).nrows for n in SCALE_OUT_NAMES])
        assert out > up

"""Property-based tests for the numeric oracles and newer components."""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import backward_error, dominance_margin, pivot_growth
from repro.kernels.reference_lu import reference_lu
from repro.matrices import make_diagonally_dominant, spd_random
from repro.ordering import static_pivot_permutation
from repro.solvers import CholeskySolver, PanguLUSolver
from repro.sparse import (
    CSRMatrix,
    matvec,
    permute_rows,
    permute_symmetric,
    spgemm,
)


@st.composite
def dominant_matrices(draw, max_n=16):
    n = draw(st.integers(3, max_n))
    density = draw(st.floats(0.1, 0.6))
    seed = draw(st.integers(0, 2 ** 16))
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < density) * rng.standard_normal((n, n))
    a = CSRMatrix.from_dense(dense + np.eye(n))
    factor = draw(st.floats(1.1, 4.0))
    return make_diagonally_dominant(a, factor)


@st.composite
def nonsingular_matrices(draw, max_n=12):
    """Matrices with nonzero diagonal but no dominance guarantee."""
    n = draw(st.integers(3, max_n))
    seed = draw(st.integers(0, 2 ** 16))
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < 0.4) * rng.standard_normal((n, n))
    dense += np.diag(rng.random(n) + 0.5)
    return CSRMatrix.from_dense(dense)


class TestReferenceLUProperties:
    @settings(deadline=None, max_examples=40)
    @given(dominant_matrices())
    def test_reconstruction(self, a):
        res = reference_lu(a)
        lu = spgemm(res.L, res.U).to_dense()
        scale = max(1.0, np.abs(a.to_dense()).max())
        assert np.abs(lu - a.to_dense()).max() < 1e-9 * scale

    @settings(deadline=None, max_examples=40)
    @given(dominant_matrices(), st.integers(0, 2 ** 16))
    def test_solve_inverts_matvec(self, a, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(a.nrows)
        b = matvec(a, x)
        x2 = reference_lu(a).solve(b)
        assert np.allclose(x, x2, atol=1e-7)

    @settings(deadline=None, max_examples=30)
    @given(dominant_matrices())
    def test_growth_bounded_for_sdd(self, a):
        # strictly diagonally dominant ⇒ pivot-free growth factor ≤ 2
        res = reference_lu(a)
        assert pivot_growth(a, res.U) <= 2.0 + 1e-9
        assert dominance_margin(a) > 0

    @settings(deadline=None, max_examples=25,
              suppress_health_check=[HealthCheck.too_slow])
    @given(dominant_matrices(max_n=14), st.integers(2, 5))
    def test_oracle_matches_block_solver(self, a, bs):
        run = PanguLUSolver(a, block_size=bs, ordering="natural").factorize()
        oracle = reference_lu(a)
        assert np.allclose(run.L.to_dense(), oracle.L.to_dense(),
                           atol=1e-8)
        assert np.allclose(run.U.to_dense(), oracle.U.to_dense(),
                           atol=1e-8)


class TestStaticPivotProperties:
    @settings(deadline=None, max_examples=40)
    @given(nonsingular_matrices())
    def test_matching_is_permutation_with_full_diagonal(self, a):
        perm = static_pivot_permutation(a)
        assert np.array_equal(np.sort(perm), np.arange(a.nrows))
        assert np.all(permute_rows(a, perm).diagonal() != 0)

    @settings(deadline=None, max_examples=40)
    @given(nonsingular_matrices())
    def test_never_worse_than_original_diagonal(self, a):
        perm = static_pivot_permutation(a)
        before = np.sum(np.log(np.abs(a.diagonal()) + 1e-300))
        after = np.sum(np.log(
            np.abs(permute_rows(a, perm).diagonal()) + 1e-300))
        assert after >= before - 1e-6


class TestCholeskyProperties:
    @settings(deadline=None, max_examples=15,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(20, 60), st.integers(0, 2 ** 10), st.integers(4, 16))
    def test_llt_reconstruction(self, n, seed, bs):
        a = spd_random(n, density=0.1, seed=seed)
        r = CholeskySolver(a, block_size=bs, scheduler="trojan").factorize()
        llt = spgemm(r.L, r.L.transpose()).to_dense()
        ref = permute_symmetric(a, r.perm).to_dense()
        assert np.abs(llt - ref).max() < 1e-8 * max(1.0, np.abs(ref).max())


class TestSolverBackwardError:
    @settings(deadline=None, max_examples=20,
              suppress_health_check=[HealthCheck.too_slow])
    @given(dominant_matrices(max_n=14), st.integers(0, 2 ** 10))
    def test_backward_stable_solve(self, a, seed):
        rng = np.random.default_rng(seed)
        b = rng.standard_normal(a.nrows)
        run = PanguLUSolver(a, block_size=4).factorize()
        x = run.solve(b)
        assert backward_error(a, x, b) < 1e-12

"""Property-based scheduler tests over random DAGs (hypothesis).

The four invariants every scheduling policy must uphold, checked on
randomly generated task DAGs (random precedence edges, random task
types, sizes and resource footprints):

1. every task executes exactly once;
2. no task starts before all of its predecessors' batches complete;
3. the Collector never exceeds the GPU's CUDA-block or shared-memory
   budget for multi-task batches (a single oversized task is allowed to
   occupy a launch alone);
4. ``task_count == sum(len(b.task_ids) for b in batches)``.

Also pins the empty-DAG no-op: scheduling zero tasks is zero batches in
zero time for every policy, not a stall assertion.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SCHEDULER_NAMES, TaskDAG, make_scheduler
from repro.core.executor import EstimateBackend
from repro.core.staticanalysis import validate_schedule
from repro.core.task import Task, TaskType
from repro.gpusim import GPUCostModel, RTX5090
from repro.sparse import uniform_partition

NB = 8  # tile grid used for synthetic coordinates


def _random_dag(n_tasks: int, edge_prob: float, seed: int) -> TaskDAG:
    """A random DAG: edges only low→high tid, so always acyclic."""
    rng = np.random.default_rng(seed)
    tasks = []
    for tid in range(n_tasks):
        ttype = TaskType(int(rng.integers(0, 4)))
        k = int(rng.integers(0, NB))
        if ttype == TaskType.GETRF:
            i = j = k
        elif ttype == TaskType.TSTRF:
            i, j = int(rng.integers(0, NB)), k
        elif ttype == TaskType.GEESM:
            i, j = k, int(rng.integers(0, NB))
        else:
            i, j = int(rng.integers(0, NB)), int(rng.integers(0, NB))
        rows = int(rng.integers(1, 48))
        cols = int(rng.integers(1, 48))
        nnz = rows * cols
        tasks.append(Task(
            tid=tid, type=ttype, k=k, i=i, j=j,
            rows=rows, cols=cols, nnz=nnz,
            flops_est=int(rng.integers(1, 10_000)),
            bytes_est=int(rng.integers(8, 100_000)),
        ))
    successors = [[] for _ in range(n_tasks)]
    pred_count = np.zeros(n_tasks, dtype=np.int64)
    for u in range(n_tasks):
        for v in range(u + 1, n_tasks):
            if rng.random() < edge_prob:
                successors[u].append(v)
                pred_count[v] += 1
    return TaskDAG(tasks=tasks, pred_count=pred_count,
                   successors=successors,
                   part=uniform_partition(NB * 16, 16))


dag_params = st.tuples(
    st.integers(min_value=1, max_value=40),       # n_tasks
    st.floats(min_value=0.0, max_value=0.5),      # edge probability
    st.integers(min_value=0, max_value=2**31 - 1) # rng seed
)


@pytest.mark.parametrize("name", SCHEDULER_NAMES)
@settings(max_examples=25, deadline=None)
@given(params=dag_params)
def test_scheduler_invariants(name, params):
    n_tasks, edge_prob, seed = params
    dag = _random_dag(n_tasks, edge_prob, seed)
    dag.validate()
    gpu = RTX5090
    result = make_scheduler(
        name, dag, EstimateBackend(), GPUCostModel(gpu)
    ).run()

    # (1) + (2): exactly-once execution, precedence respected.  Tile
    # hazard checks are off: these DAGs carry random tile coordinates
    # with random edges, so tile overlap does not imply a dependency.
    validate_schedule(dag, result.batches, hazards=False)

    # (4): the accounting matches the batches
    assert result.task_count == dag.n_tasks
    assert result.task_count == sum(len(b.task_ids) for b in result.batches)
    assert result.kernel_count == len(result.batches)

    # (3): GPU budgets for every multi-task batch
    arrays = dag.task_arrays()
    for b in result.batches:
        tids = np.asarray(b.task_ids, dtype=np.int64)
        assert b.cuda_blocks == int(arrays.cuda_blocks[tids].sum())
        if len(b.task_ids) > 1:
            assert b.cuda_blocks <= gpu.max_resident_blocks, \
                "multi-task batch exceeds the CUDA-block budget"
            assert int(arrays.shared_mem[tids].sum()) \
                <= gpu.shared_mem_total_bytes, \
                "multi-task batch exceeds the shared-memory budget"

    # time axis is sane
    assert result.kernel_time >= 0.0
    assert result.sched_overhead >= 0.0
    assert all(b.t_end >= b.t_start for b in result.batches)


@given(params=dag_params)
@settings(max_examples=10, deadline=None)
def test_trojan_respects_max_batch_tasks(params):
    n_tasks, edge_prob, seed = params
    dag = _random_dag(n_tasks, edge_prob, seed)
    result = make_scheduler(
        "trojan", dag, EstimateBackend(), GPUCostModel(RTX5090),
        max_batch_tasks=3,
    ).run()
    validate_schedule(dag, result.batches, hazards=False)
    assert max(len(b.task_ids) for b in result.batches) <= 3


@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def test_empty_dag_is_noop(name):
    dag = TaskDAG(tasks=[], pred_count=np.zeros(0, dtype=np.int64),
                  successors=[], part=uniform_partition(NB * 16, 16))
    result = make_scheduler(
        name, dag, EstimateBackend(), GPUCostModel(RTX5090)
    ).run()
    assert result.batches == []
    assert result.kernel_count == 0
    assert result.task_count == 0
    assert result.kernel_time == 0.0
    assert result.sched_overhead == 0.0
    assert result.total_time == 0.0
    assert result.total_flops == 0
    assert result.gflops == 0.0
    assert result.mean_batch_size == 0.0

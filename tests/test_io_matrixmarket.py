"""Unit tests for the Matrix Market reader/writer."""

import io

import numpy as np
import pytest

from repro.io import read_matrix_market, write_matrix_market
from repro.sparse import CSRMatrix


def _read_str(text: str):
    return read_matrix_market(io.StringIO(text))


class TestRead:
    def test_general_real(self):
        a = _read_str(
            "%%MatrixMarket matrix coordinate real general\n"
            "% comment\n"
            "2 3 2\n"
            "1 1 1.5\n"
            "2 3 -2.0\n"
        )
        dense = a.to_dense()
        assert dense.shape == (2, 3)
        assert dense[0, 0] == 1.5
        assert dense[1, 2] == -2.0

    def test_symmetric_expanded(self):
        a = _read_str(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "2 2 2\n"
            "1 1 4.0\n"
            "2 1 1.0\n"
        )
        dense = a.to_dense()
        assert dense[0, 1] == 1.0 and dense[1, 0] == 1.0
        assert dense[0, 0] == 4.0

    def test_skew_symmetric(self):
        a = _read_str(
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 1\n"
            "2 1 3.0\n"
        )
        dense = a.to_dense()
        assert dense[1, 0] == 3.0 and dense[0, 1] == -3.0

    def test_pattern_entries_get_ones(self):
        a = _read_str(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 2\n"
            "1 2\n"
            "2 1\n"
        )
        assert np.allclose(a.to_dense(), [[0, 1], [1, 0]])

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError):
            _read_str("1 1 0\n")

    def test_unsupported_field_rejected(self):
        with pytest.raises(ValueError):
            _read_str("%%MatrixMarket matrix coordinate complex general\n1 1 0\n")

    def test_unsupported_format_rejected(self):
        with pytest.raises(ValueError):
            _read_str("%%MatrixMarket matrix array real general\n1 1\n")

    def test_entry_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            _read_str(
                "%%MatrixMarket matrix coordinate real general\n"
                "2 2 3\n"
                "1 1 1.0\n"
            )


class TestRoundtrip:
    def test_write_read(self, random_sparse, tmp_path):
        a, dense = random_sparse
        path = tmp_path / "m.mtx"
        write_matrix_market(path, a, comment="roundtrip test")
        back = read_matrix_market(path)
        assert np.allclose(back.to_dense(), dense)

    def test_write_read_stream(self, random_sparse):
        a, dense = random_sparse
        buf = io.StringIO()
        write_matrix_market(buf, a)
        buf.seek(0)
        assert np.allclose(read_matrix_market(buf).to_dense(), dense)

    def test_values_survive_full_precision(self):
        a = CSRMatrix.from_dense(np.array([[np.pi, 0.0], [0.0, 1 / 3]]))
        buf = io.StringIO()
        write_matrix_market(buf, a)
        buf.seek(0)
        back = read_matrix_market(buf)
        assert back.to_dense()[0, 0] == np.pi
        assert back.to_dense()[1, 1] == 1 / 3

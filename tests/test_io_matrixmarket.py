"""Unit tests for the Matrix Market reader/writer."""

import contextlib
import io
import signal

import numpy as np
import pytest

from repro.io import read_matrix_market, write_matrix_market
from repro.sparse import CSRMatrix


def _read_str(text: str):
    return read_matrix_market(io.StringIO(text))


class TestRead:
    def test_general_real(self):
        a = _read_str(
            "%%MatrixMarket matrix coordinate real general\n"
            "% comment\n"
            "2 3 2\n"
            "1 1 1.5\n"
            "2 3 -2.0\n"
        )
        dense = a.to_dense()
        assert dense.shape == (2, 3)
        assert dense[0, 0] == 1.5
        assert dense[1, 2] == -2.0

    def test_symmetric_expanded(self):
        a = _read_str(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "2 2 2\n"
            "1 1 4.0\n"
            "2 1 1.0\n"
        )
        dense = a.to_dense()
        assert dense[0, 1] == 1.0 and dense[1, 0] == 1.0
        assert dense[0, 0] == 4.0

    def test_skew_symmetric(self):
        a = _read_str(
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 1\n"
            "2 1 3.0\n"
        )
        dense = a.to_dense()
        assert dense[1, 0] == 3.0 and dense[0, 1] == -3.0

    def test_pattern_entries_get_ones(self):
        a = _read_str(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 2\n"
            "1 2\n"
            "2 1\n"
        )
        assert np.allclose(a.to_dense(), [[0, 1], [1, 0]])

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError):
            _read_str("1 1 0\n")

    def test_unsupported_field_rejected(self):
        with pytest.raises(ValueError):
            _read_str("%%MatrixMarket matrix coordinate complex general\n1 1 0\n")

    def test_unsupported_format_rejected(self):
        with pytest.raises(ValueError):
            _read_str("%%MatrixMarket matrix array real general\n1 1\n")

    def test_entry_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            _read_str(
                "%%MatrixMarket matrix coordinate real general\n"
                "2 2 3\n"
                "1 1 1.0\n"
            )


class TestTruncatedFiles:
    """Regression tests: truncated/comment-only files must raise, not hang.

    ``_read`` used to loop forever at EOF because ``readline()`` returns
    ``""`` indefinitely and the comment-skip condition treated that as a
    blank line.  Each read here runs under a SIGALRM watchdog so a
    regression fails the test instead of hanging the suite.
    """

    @contextlib.contextmanager
    def _watchdog(self, seconds: int = 10):
        def _timed_out(signum, frame):
            raise AssertionError(
                "read_matrix_market hung on a truncated file"
            )

        old = signal.signal(signal.SIGALRM, _timed_out)
        signal.alarm(seconds)
        try:
            yield
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, old)

    def test_header_only_raises(self):
        with self._watchdog():
            with pytest.raises(ValueError, match="truncated"):
                _read_str("%%MatrixMarket matrix coordinate real general\n")

    def test_comment_only_raises(self):
        with self._watchdog():
            with pytest.raises(ValueError, match="truncated"):
                _read_str(
                    "%%MatrixMarket matrix coordinate real general\n"
                    "% only comments\n"
                    "% no size line\n"
                )

    def test_blank_lines_then_eof_raises(self):
        with self._watchdog():
            with pytest.raises(ValueError, match="truncated"):
                _read_str(
                    "%%MatrixMarket matrix coordinate real general\n"
                    "\n"
                    "\n"
                )

    def test_truncated_entries_named_in_error(self):
        with self._watchdog():
            with pytest.raises(ValueError, match="expected 3 entries, found 1"):
                _read_str(
                    "%%MatrixMarket matrix coordinate real general\n"
                    "2 2 3\n"
                    "1 1 1.0\n"
                )

    def test_too_many_entries_rejected(self):
        with pytest.raises(ValueError, match="more than 1"):
            _read_str(
                "%%MatrixMarket matrix coordinate real general\n"
                "2 2 1\n"
                "1 1 1.0\n"
                "2 2 2.0\n"
            )

    def test_short_entry_line_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            _read_str(
                "%%MatrixMarket matrix coordinate real general\n"
                "2 2 1\n"
                "1 1\n"
            )

    def test_truncated_file_from_disk(self, tmp_path):
        path = tmp_path / "truncated.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n% half-written\n",
            encoding="utf-8",
        )
        with self._watchdog():
            with pytest.raises(ValueError, match="truncated"):
                read_matrix_market(path)


class TestRoundtrip:
    def test_write_read(self, random_sparse, tmp_path):
        a, dense = random_sparse
        path = tmp_path / "m.mtx"
        write_matrix_market(path, a, comment="roundtrip test")
        back = read_matrix_market(path)
        assert np.allclose(back.to_dense(), dense)

    def test_write_read_stream(self, random_sparse):
        a, dense = random_sparse
        buf = io.StringIO()
        write_matrix_market(buf, a)
        buf.seek(0)
        assert np.allclose(read_matrix_market(buf).to_dense(), dense)

    def test_values_survive_full_precision(self):
        a = CSRMatrix.from_dense(np.array([[np.pi, 0.0], [0.0, 1 / 3]]))
        buf = io.StringIO()
        write_matrix_market(buf, a)
        buf.seek(0)
        back = read_matrix_market(buf)
        assert back.to_dense()[0, 0] == np.pi
        assert back.to_dense()[1, 1] == 1 / 3

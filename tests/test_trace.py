"""Tests for the Chrome-trace export."""

import io
import json

import pytest

from repro.analysis import write_trace
from repro.cluster import DistributedSimulator, H100_CLUSTER
from repro.core import build_block_dag, make_scheduler
from repro.core.executor import EstimateBackend
from repro.gpusim import GPUCostModel, RTX5090
from repro.matrices import circuit_like
from repro.ordering import compute_ordering
from repro.sparse import permute_symmetric, uniform_partition
from repro.symbolic import block_fill


@pytest.fixture(scope="module")
def dag():
    a = circuit_like(100, seed=3)
    b = permute_symmetric(a, compute_ordering(a, "mindeg"))
    part = uniform_partition(100, 10)
    return build_block_dag(block_fill(b, part), part)


class TestScheduleTrace:
    def test_roundtrips_as_json(self, dag, tmp_path):
        r = make_scheduler("trojan", dag, EstimateBackend(),
                           GPUCostModel(RTX5090)).run()
        path = tmp_path / "trace.json"
        write_trace(path, r)
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == r.kernel_count

    def test_events_cover_timeline(self, dag):
        r = make_scheduler("serial", dag, EstimateBackend(),
                           GPUCostModel(RTX5090)).run()
        buf = io.StringIO()
        write_trace(buf, r)
        events = json.loads(buf.getvalue())["traceEvents"]
        assert all(e["ph"] == "X" and e["dur"] > 0 for e in events)
        end = max(e["ts"] + e["dur"] for e in events)
        assert end == pytest.approx(r.kernel_time * 1e6, rel=1e-6)

    def test_unknown_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            write_trace(tmp_path / "x.json", object())


class TestDistributedTrace:
    def test_per_process_rows(self, dag, tmp_path):
        sim = DistributedSimulator(dag, EstimateBackend(), H100_CLUSTER,
                                   4, "trojan", record_timeline=True)
        res = sim.run()
        path = tmp_path / "dist.json"
        write_trace(path, res)
        events = json.loads(path.read_text())["traceEvents"]
        assert {e["tid"] for e in events} <= {0, 1, 2, 3}
        assert len(events) == res.total_kernels

    def test_requires_recorded_timeline(self, dag, tmp_path):
        res = DistributedSimulator(dag, EstimateBackend(), H100_CLUSTER,
                                   2, "serial").run()
        with pytest.raises(ValueError):
            write_trace(tmp_path / "x.json", res)

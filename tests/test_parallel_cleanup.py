"""Shared-memory hygiene of the multiprocess executor.

The failure mode that matters: ``/dev/shm`` segments surviving a crashed
run.  Segment names leak silently (the memory stays reserved until
reboot), so CI runs a suite-level leak check *and* this file kills a
worker outright and asserts the coordinator reaps every segment while
raising a structured, actionable error.
"""

import os
import signal
from pathlib import Path

import numpy as np
import pytest

from repro.matrices.generators import poisson2d
from repro.parallel import ParallelExecutor, WorkerCrashError

SHM_DIR = Path("/dev/shm")


def shm_segments() -> set:
    """Names of the interpreter-created shared-memory segments."""
    if not SHM_DIR.exists():
        pytest.skip("no /dev/shm on this platform")
    return {f.name for f in SHM_DIR.iterdir() if f.name.startswith("psm_")}


@pytest.fixture()
def problem():
    a = poisson2d(12)
    rng = np.random.default_rng(5)
    return a, rng.standard_normal(a.nrows)


class TestCleanShutdown:
    def test_full_run_leaves_no_segments(self, problem):
        a, b = problem
        baseline = shm_segments()
        with ParallelExecutor(a, workers=2, block_size=24) as ex:
            ex.factorize()
            ex.solve(b)
            assert shm_segments() > baseline  # arenas really are in shm
        assert shm_segments() == baseline

    def test_close_is_idempotent(self, problem):
        a, _ = problem
        baseline = shm_segments()
        ex = ParallelExecutor(a, workers=2, block_size=24)
        ex.factorize()
        ex.close()
        ex.close()
        assert shm_segments() == baseline


class TestWorkerKill:
    def test_sigkill_reaps_arena_and_raises_structured(self, problem):
        a, _ = problem
        baseline = shm_segments()
        ex = ParallelExecutor(a, workers=2, block_size=24)
        try:
            ex.start()
            victim = ex.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            with pytest.raises(WorkerCrashError) as exc_info:
                ex.factorize()
            err = exc_info.value
            assert err.kind == "died"
            assert err.worker == 0
            assert err.exitcode == -signal.SIGKILL
            # the reap already unlinked the factor arena
            assert shm_segments() == baseline
            assert ex.worker_pids() == []
        finally:
            ex.close()
        assert shm_segments() == baseline

    def test_sigkill_mid_solve_reaps_everything(self, problem):
        a, b = problem
        baseline = shm_segments()
        ex = ParallelExecutor(a, workers=2, block_size=24)
        try:
            ex.factorize()
            # factor arena + pool live; kill between phases so the solve
            # dispatch (phase message or batch await) hits the corpse
            os.kill(ex.worker_pids()[1], signal.SIGKILL)
            with pytest.raises(WorkerCrashError) as exc_info:
                ex.solve(b)
            assert exc_info.value.kind == "died"
            assert exc_info.value.exitcode == -signal.SIGKILL
            assert shm_segments() == baseline
        finally:
            ex.close()
        assert shm_segments() == baseline

"""Unit and integration tests for the distributed cluster simulator."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterSpec,
    DistributedResult,
    DistributedSimulator,
    H100_CLUSTER,
    IB_200G,
    IB_400G,
    MI50_CLUSTER,
    NVLINK,
    NetworkModel,
    ProcessGrid,
)
from repro.core import build_block_dag
from repro.core.executor import EstimateBackend, ReplayBackend
from repro.matrices import circuit_like, paper_matrix
from repro.ordering import compute_ordering
from repro.solvers import PanguLUSolver
from repro.sparse import permute_symmetric, uniform_partition
from repro.symbolic import block_fill


@pytest.fixture(scope="module")
def dist_setup():
    """A factorised matrix whose DAG and stats feed the simulator."""
    a = paper_matrix("c-71", scale=0.6)
    run = PanguLUSolver(a, block_size=32, scheduler="serial").factorize()
    return run.dag, ReplayBackend(run.stats)


class TestProcessGrid:
    def test_square_grid(self):
        g = ProcessGrid(16)
        assert (g.pr, g.pc) == (4, 4)

    def test_rectangular_grid(self):
        g = ProcessGrid(8)
        assert g.pr * g.pc == 8
        assert g.pr <= g.pc

    def test_prime_count(self):
        g = ProcessGrid(7)
        assert (g.pr, g.pc) == (1, 7)

    def test_owner_block_cyclic(self):
        g = ProcessGrid(4)  # 2x2
        assert g.owner(0, 0) == 0
        assert g.owner(0, 1) == 1
        assert g.owner(1, 0) == 2
        assert g.owner(1, 1) == 3
        assert g.owner(2, 2) == 0  # wraps

    def test_owner_covers_all_ranks(self):
        g = ProcessGrid(6)
        owners = {g.owner(i, j) for i in range(12) for j in range(12)}
        assert owners == set(range(6))

    def test_explicit_shape(self):
        g = ProcessGrid(6, pr=2, pc=3)
        assert (g.pr, g.pc) == (2, 3)

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            ProcessGrid(6, pr=2, pc=2)

    def test_coords_roundtrip(self):
        g = ProcessGrid(6, pr=2, pc=3)
        for r in range(6):
            i, j = g.coords(r)
            assert g.owner(i, j) == r

    def test_zero_procs_rejected(self):
        with pytest.raises(ValueError):
            ProcessGrid(0)

    def test_rectangular_constructor(self):
        g = ProcessGrid.rectangular(3, 7)
        assert g.nprocs == 21
        assert g.shape == (3, 7)

    def test_rectangular_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            ProcessGrid.rectangular(0, 4)
        with pytest.raises(ValueError, match="positive"):
            ProcessGrid.rectangular(4, -1)

    def test_negative_shape_rejected(self):
        # a negative dimension would silently wrap via Python's modulo
        with pytest.raises(ValueError, match="positive"):
            ProcessGrid(4, pr=-2, pc=-2)

    def test_negative_tile_index_rejected(self):
        g = ProcessGrid(4)
        with pytest.raises(ValueError, match="non-negative"):
            g.owner(-1, 0)
        with pytest.raises(ValueError, match="non-negative"):
            g.owner(0, -3)

    def test_owner_array_matches_scalar(self):
        g = ProcessGrid.rectangular(3, 5)
        i = np.arange(40).repeat(40)
        j = np.tile(np.arange(40), 40)
        vec = g.owner_array(i, j)
        assert vec.tolist() == [g.owner(int(a), int(b))
                                for a, b in zip(i, j)]

    def test_owner_array_validation(self):
        g = ProcessGrid(4)
        with pytest.raises(ValueError, match="non-negative"):
            g.owner_array(np.array([0, -1]), np.array([0, 0]))
        with pytest.raises(ValueError, match="matching shapes"):
            g.owner_array(np.arange(3), np.arange(4))

    def test_large_grid_is_cheap(self):
        # thousand-rank grids must not pay a quadratic setup cost: the
        # 4096-rank scale-out sweep constructs one per cell
        import time
        t0 = time.perf_counter()
        for _ in range(100):
            g = ProcessGrid(4096)
        assert time.perf_counter() - t0 < 0.5
        assert g.shape == (64, 64)
        owners = g.owner_array(np.arange(8192) // 64,
                               np.arange(8192) % 64)
        assert int(owners.max()) < 4096


class TestNetwork:
    def test_message_time_formula(self):
        net = NetworkModel("t", latency_us=2.0, bandwidth_gbs=50.0)
        assert net.message_time(0) == pytest.approx(2e-6)
        assert net.message_time(50 * 10 ** 9) == pytest.approx(1.0 + 2e-6)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            IB_400G.message_time(-1)

    def test_faster_link_is_faster(self):
        size = 10 ** 6
        assert NVLINK.message_time(size) < IB_400G.message_time(size)
        assert IB_400G.message_time(size) < IB_200G.message_time(size)

    def test_cluster_intranode_cheaper(self):
        size = 10 ** 6
        intra = H100_CLUSTER.message_time(0, 1, size)   # same node (8/node)
        inter = H100_CLUSTER.message_time(0, 8, size)   # across nodes
        assert intra < inter

    def test_self_message_free(self):
        assert H100_CLUSTER.message_time(3, 3, 10 ** 9) == 0.0

    def test_table3_presets(self):
        assert H100_CLUSTER.gpus_per_node == 8
        assert MI50_CLUSTER.gpus_per_node == 4
        assert H100_CLUSTER.gpu.fp64_gflops == 25610.0
        assert MI50_CLUSTER.gpu.fp64_gflops == 6710.0


class TestDistributedSimulator:
    @pytest.mark.parametrize("policy", ["serial", "streams", "trojan"])
    def test_all_tasks_complete(self, dist_setup, policy):
        dag, backend = dist_setup
        res = DistributedSimulator(dag, backend, H100_CLUSTER, 4,
                                   policy).run()
        assert res.total_tasks == dag.n_tasks
        assert res.makespan > 0

    @pytest.mark.parametrize("policy", ["serial", "trojan"])
    def test_single_process_no_messages(self, dist_setup, policy):
        dag, backend = dist_setup
        res = DistributedSimulator(dag, backend, H100_CLUSTER, 1,
                                   policy).run()
        assert res.messages == 0
        assert res.comm_bytes == 0

    def test_more_gpus_more_messages(self, dist_setup):
        dag, backend = dist_setup
        m = [DistributedSimulator(dag, backend, H100_CLUSTER, g,
                                  "serial").run().messages
             for g in (1, 4, 16)]
        assert m[0] < m[1] < m[2]

    def test_strong_scaling_baseline(self, dist_setup):
        dag, backend = dist_setup
        t = [DistributedSimulator(dag, backend, H100_CLUSTER, g,
                                  "serial").run().makespan
             for g in (1, 4, 16)]
        assert t[0] > t[1] > t[2]

    def test_trojan_fastest_policy(self, dist_setup):
        dag, backend = dist_setup
        times = {
            p: DistributedSimulator(dag, backend, H100_CLUSTER, 4, p)
            .run().makespan
            for p in ("serial", "streams", "trojan")
        }
        assert times["trojan"] < times["streams"] < times["serial"]

    def test_trojan_fewer_kernels(self, dist_setup):
        dag, backend = dist_setup
        serial = DistributedSimulator(dag, backend, H100_CLUSTER, 4,
                                      "serial").run()
        trojan = DistributedSimulator(dag, backend, H100_CLUSTER, 4,
                                      "trojan").run()
        assert trojan.total_kernels < serial.total_kernels
        assert serial.total_kernels == dag.n_tasks

    def test_h100_faster_than_mi50(self, dist_setup):
        dag, backend = dist_setup
        h = DistributedSimulator(dag, backend, H100_CLUSTER, 4, "trojan").run()
        m = DistributedSimulator(dag, backend, MI50_CLUSTER, 4, "trojan").run()
        assert h.makespan < m.makespan

    def test_flops_invariant_across_policies(self, dist_setup):
        dag, backend = dist_setup
        flops = {
            DistributedSimulator(dag, backend, H100_CLUSTER, g, p).run()
            .total_flops
            for p in ("serial", "trojan") for g in (1, 4)
        }
        assert len(flops) == 1

    def test_single_gpu_matches_single_node_scheduler(self, dist_setup):
        # 1-process distributed run ≡ the single-device scheduler
        from repro.core.baselines import make_scheduler
        from repro.gpusim import GPUCostModel

        dag, backend = dist_setup
        dist = DistributedSimulator(dag, backend, H100_CLUSTER, 1,
                                    "serial").run()
        local = make_scheduler("serial", dag, backend,
                               GPUCostModel(H100_CLUSTER.gpu)).run()
        assert dist.total_kernels == local.kernel_count
        assert dist.makespan == pytest.approx(local.kernel_time, rel=1e-9)

    def test_unknown_policy_rejected(self, dist_setup):
        dag, backend = dist_setup
        with pytest.raises(ValueError):
            DistributedSimulator(dag, backend, H100_CLUSTER, 2, "magic")

    def test_load_balance_metric(self, dist_setup):
        dag, backend = dist_setup
        res = DistributedSimulator(dag, backend, H100_CLUSTER, 4,
                                   "serial").run()
        assert 0 < res.load_balance <= 1.0

    def _result(self, **overrides):
        kwargs = dict(
            cluster="h100", policy="serial", nprocs=1, makespan=0.0,
            total_tasks=0, total_kernels=0, total_flops=0,
            per_proc_kernels=[], per_proc_busy=[], messages=0,
            comm_bytes=0,
        )
        kwargs.update(overrides)
        return DistributedResult(**kwargs)

    def test_load_balance_empty_is_balanced(self):
        # regression: empty per_proc_busy used to raise "zero-size array
        # to reduction operation maximum"
        res = self._result()
        assert res.load_balance == 1.0
        assert res.summary()["balance"] == 1.0

    def test_load_balance_all_idle_is_balanced(self):
        res = self._result(nprocs=2, per_proc_busy=[0.0, 0.0])
        assert res.load_balance == 1.0

    def test_result_rejects_nonpositive_nprocs(self):
        for bad in (0, -3):
            with pytest.raises(ValueError, match="nprocs"):
                self._result(nprocs=bad)

    def test_simulator_rejects_nonpositive_nprocs(self, dist_setup):
        dag, backend = dist_setup
        with pytest.raises(ValueError, match="nprocs"):
            DistributedSimulator(dag, backend, H100_CLUSTER, 0, "serial")

    def test_summary_keys(self, dist_setup):
        dag, backend = dist_setup
        res = DistributedSimulator(dag, backend, H100_CLUSTER, 2,
                                   "trojan").run()
        s = res.summary()
        assert {"gpus", "time_s", "gflops", "messages"} <= set(s)

    def test_estimate_backend_works(self):
        a = circuit_like(96, seed=1)
        b = permute_symmetric(a, compute_ordering(a, "mindeg"))
        part = uniform_partition(96, 12)
        dag = build_block_dag(block_fill(b, part), part, sparse_tiles=True)
        res = DistributedSimulator(dag, EstimateBackend(), MI50_CLUSTER, 4,
                                   "trojan").run()
        assert res.total_tasks == dag.n_tasks

"""Tests for the factorisation-as-a-service stack (``repro.serve``).

Covers the wire protocol, the RHS fold/unfold primitives, admission
control (max-inflight bound, queue overflow, queued-deadline expiry),
the micro-batching path, and — the differential contract — that a
server ``refactorize + solve`` round-trip is *bit-identical* to a fresh
in-process ``factorize + solve`` for the same (pattern, values, b),
across the CSR and DAG solve paths and micro-batched vs solo requests.
"""

from __future__ import annotations

import asyncio
import io
import time

import numpy as np
import pytest

from repro.matrices import circuit_like, poisson2d
from repro.serve import (
    BackgroundServer,
    ProtocolError,
    ServeError,
    ServerError,
    SolverClient,
    pack_message,
    read_message_sync,
)
from repro.serve.metrics import ServerMetrics
from repro.serve.server import SolverServer
from repro.solvers import PanguLUSolver, fold_rhs, unfold_rhs
from repro.sparse import matvec


def _newton_values(a, rng):
    """Same pattern, new values, diagonally dominant (refactorisable)."""
    out = a.copy()
    rows = np.repeat(np.arange(a.nrows), a.row_lengths())
    off = rows != a.indices
    out.data[off] = rng.standard_normal(int(off.sum())) * 0.5
    offsum = np.bincount(rows[off], weights=np.abs(out.data[off]),
                         minlength=a.nrows)
    out.data[~off] = 2.0 * offsum[rows[~off]] + 1.0
    return out


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_roundtrip(self):
        header = {"op": "solve", "id": 7, "refine": 2}
        arrays = {"b": np.arange(12.0).reshape(3, 4),
                  "idx": np.array([1, 2, 3], dtype=np.int64)}
        wire = pack_message(header, arrays)
        got_h, got_a = read_message_sync(io.BytesIO(wire))
        assert got_h == header
        assert np.array_equal(got_a["b"], arrays["b"])
        assert got_a["b"].dtype == np.float64
        assert np.array_equal(got_a["idx"], arrays["idx"])

    def test_two_messages_on_one_stream(self):
        wire = pack_message({"id": 1}) + pack_message(
            {"id": 2}, {"x": np.ones(3)})
        fh = io.BytesIO(wire)
        h1, a1 = read_message_sync(fh)
        h2, a2 = read_message_sync(fh)
        assert h1["id"] == 1 and not a1
        assert h2["id"] == 2 and a2["x"].shape == (3,)

    def test_eof_raises(self):
        with pytest.raises(EOFError):
            read_message_sync(io.BytesIO(b""))
        truncated = pack_message({"id": 1}, {"x": np.ones(4)})[:-8]
        with pytest.raises(EOFError):
            read_message_sync(io.BytesIO(truncated))

    def test_rejects_non_wire_dtype(self):
        with pytest.raises(ProtocolError):
            pack_message({}, {"x": np.array(["a", "b"])})

    def test_rejects_hostile_header(self):
        bad = pack_message({"ok": True}).replace(b'"arrays":[]',
                                                 b'"arrays":{}')
        with pytest.raises(ProtocolError):
            read_message_sync(io.BytesIO(bad))


# ----------------------------------------------------------------------
# fold / unfold
# ----------------------------------------------------------------------
class TestFoldRhs:
    def test_roundtrip_shapes(self, rng):
        bs = [rng.standard_normal(9), rng.standard_normal((9, 3)),
              rng.standard_normal((9, 1))]
        folded, splits = fold_rhs(bs)
        assert folded.shape == (9, 5)
        out = unfold_rhs(folded, splits)
        for orig, got in zip(bs, out):
            assert got.shape == orig.shape
            assert np.array_equal(got, orig)

    def test_rejects_mismatched_lengths(self, rng):
        with pytest.raises(ValueError):
            fold_rhs([rng.standard_normal(4), rng.standard_normal(5)])
        with pytest.raises(ValueError):
            fold_rhs([])
        with pytest.raises(ValueError):
            fold_rhs([rng.standard_normal((2, 2, 2))])

    def test_unfold_must_cover(self, rng):
        folded, splits = fold_rhs([rng.standard_normal(4)])
        with pytest.raises(ValueError):
            unfold_rhs(np.hstack([folded, folded]), splits)


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_snapshot_shapes(self):
        m = ServerMetrics()
        m.request("solve")
        m.observe("solve", "total", 0.010)
        m.observe("solve", "total", 0.030)
        m.batch(requests=3, columns=5)
        m.session_lookup(hit=True)
        m.session_lookup(hit=False)
        m.rejection("deadline")
        snap = m.snapshot()
        assert snap["requests"] == {"solve": 1}
        lat = snap["latency"]["solve"]["total"]
        assert lat["count"] == 2
        assert 10.0 <= lat["p50_ms"] <= 30.0
        assert snap["batching"]["mean_requests"] == 3.0
        assert snap["session_cache"]["hit_rate"] == 0.5
        assert snap["rejections"] == {"deadline": 1}

    def test_queue_gauge(self):
        m = ServerMetrics()
        m.queue_enter()
        m.queue_enter()
        m.queue_exit()
        snap = m.snapshot()
        assert snap["queue"] == {"depth": 1, "peak": 2}


# ----------------------------------------------------------------------
# admission control (no wire needed — exercised on the server object)
# ----------------------------------------------------------------------
class TestAdmission:
    def test_deadline_and_overload(self):
        async def scenario():
            s = SolverServer(max_inflight=1, max_queue=1)
            await s.start()
            try:
                await s._admit("solve", None)  # occupy the only slot
                with pytest.raises(ServeError) as exc:
                    await s._admit("solve", time.perf_counter() + 0.02)
                assert exc.value.code == "DEADLINE"
                waiter = asyncio.create_task(s._admit("solve", None))
                await asyncio.sleep(0.01)  # waiter now fills the queue
                with pytest.raises(ServeError) as exc:
                    await s._admit("solve", None)
                assert exc.value.code == "OVERLOADED"
                s._sem.release()
                await waiter
                s._sem.release()
            finally:
                s.stop()
                await s._close()
            return s.metrics.snapshot()

        snap = asyncio.run(scenario())
        assert snap["rejections"] == {"deadline": 1, "overloaded": 1}
        assert snap["queue"]["depth"] == 0

    def test_expired_deadline_rejected_before_waiting(self):
        async def scenario():
            s = SolverServer(max_inflight=1)
            await s.start()
            try:
                with pytest.raises(ServeError) as exc:
                    await s._admit("solve", time.perf_counter() - 1.0)
                assert exc.value.code == "DEADLINE"
            finally:
                s.stop()
                await s._close()

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# server round trips
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def served():
    """One background server + client + factorised session per module."""
    a = circuit_like(140, seed=7)
    with BackgroundServer(batch_window=0.05) as bg:
        with SolverClient(bg.host, bg.port) as client:
            info = client.factorize(a, solver="pangulu", block_size=16,
                                    scheduler="trojan")
            yield bg, client, a, info["session"]


class TestServerOps:
    def test_ping_and_stats(self, served):
        _, client, _, session = served
        assert client.ping()
        stats = client.stats()
        assert stats["config"]["micro_batch"] is True
        assert any(s["session"] == session for s in stats["sessions"])

    def test_analyze_primes_cache(self, served):
        _, client, a, _ = served
        info = client.analyze(a, solver="pangulu", block_size=16)
        assert info["fill_nnz"] > a.nnz
        assert info["tasks"] > 0

    def test_warm_factorize_takes_fast_path(self, served):
        _, client, a, session = served
        info = client.factorize(a, solver="pangulu", block_size=16,
                                scheduler="trojan")
        assert info["fast_path"] is True
        assert info["session"] == session
        assert info["phase_seconds"]["reorder"] == 0.0

    def test_solve_matches_truth(self, served, rng):
        _, client, a, session = served
        x_true = rng.standard_normal(a.nrows)
        b = matvec(a, x_true)
        x = client.solve(session, b, refine=1)
        assert np.linalg.norm(x - x_true) < 1e-10 * np.linalg.norm(x_true)

    def test_unknown_session_and_bad_requests(self, served, rng):
        _, client, a, session = served
        with pytest.raises(ServerError) as exc:
            client.solve("no-such-session", rng.standard_normal(a.nrows))
        assert exc.value.code == "UNKNOWN_SESSION"
        with pytest.raises(ServerError) as exc:
            client.solve(session, rng.standard_normal(a.nrows + 1))
        assert exc.value.code == "BAD_REQUEST"
        with pytest.raises(ServerError) as exc:
            client.solve(session, rng.standard_normal(a.nrows), refine=-1)
        assert exc.value.code == "BAD_REQUEST"
        with pytest.raises(ServerError) as exc:
            client.refactorize(session, data=np.ones(3))
        assert exc.value.code == "BAD_REQUEST"

    def test_pattern_mismatch_rejected(self, served):
        _, client, a, session = served
        other = poisson2d(12)
        with pytest.raises(ServerError) as exc:
            client.refactorize(session, a=other)
        assert exc.value.code == "PATTERN_MISMATCH"

    def test_micro_batch_folds_pipelined_solves(self, served, rng):
        _, client, a, session = served
        before = client.stats()["metrics"]["batching"]["launches"]
        bs = [rng.standard_normal(a.nrows) for _ in range(4)]
        xs = client.solve_many(session, bs, batch_solve=True)
        after = client.stats()["metrics"]["batching"]
        assert after["launches"] > before
        assert after["max_requests"] >= 2
        assert after["max_columns"] >= after["max_requests"]
        run = PanguLUSolver(a, block_size=16, scheduler="trojan").factorize()
        for b, x in zip(bs, xs):
            assert np.array_equal(x, run.solve(b, batch_solve=True))


# ----------------------------------------------------------------------
# the differential contract (pinned across solve paths and batching)
# ----------------------------------------------------------------------
class TestServerDifferential:
    @pytest.mark.parametrize("batch_solve", [False, True, None])
    @pytest.mark.parametrize("refine", [0, 1])
    def test_refactorize_solve_bit_identical_to_in_process(
            self, batch_solve, refine, rng):
        """Server ``refactorize + solve`` ≡ fresh ``factorize + solve``.

        ``batch_solve=None`` exercises whatever ``REPRO_BATCH_SOLVE``
        says (the CI matrix runs this file with the knob off and on);
        solo requests and pipelined micro-batched requests must both
        return the exact bits of an in-process solve on a fresh
        factorisation of the same (pattern, values).
        """
        a = circuit_like(120, seed=11)
        a2 = _newton_values(a, rng)
        bs = [rng.standard_normal(a.nrows),
              rng.standard_normal((a.nrows, 3))]
        with BackgroundServer(batch_window=0.05) as bg:
            with SolverClient(bg.host, bg.port) as client:
                info = client.factorize(a, solver="pangulu", block_size=16,
                                        scheduler="trojan")
                session = info["session"]
                client.refactorize(session, data=a2.data)
                solo = [client.solve(session, b, refine=refine,
                                     batch_solve=batch_solve)
                        for b in bs]
                piped = client.solve_many(session, bs, refine=refine,
                                          batch_solve=batch_solve)
        fresh = PanguLUSolver(a2, block_size=16,
                              scheduler="trojan").factorize()
        for b, x_solo, x_piped in zip(bs, solo, piped):
            expect = fresh.solve(b, refine=refine, a=a2,
                                 batch_solve=batch_solve)
            assert np.array_equal(x_solo, expect)
            assert np.array_equal(x_piped, expect)
            assert np.all(np.isfinite(expect))


# ----------------------------------------------------------------------
# warm-session eviction (TTL + LRU cap)
# ----------------------------------------------------------------------
class TestSessionEviction:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="session_ttl"):
            SolverServer(session_ttl=0)
        with pytest.raises(ValueError, match="max_sessions"):
            SolverServer(max_sessions=0)

    def test_lru_cap_evicts_and_refactorizes_cleanly(self, rng):
        """An LRU-displaced session is gone but rebuilds correctly."""
        a = circuit_like(100, seed=3)
        other = poisson2d(10)
        with BackgroundServer(batch_window=0.01, max_sessions=1) as bg:
            with SolverClient(bg.host, bg.port) as client:
                s1 = client.factorize(a, solver="pangulu",
                                      block_size=16)["session"]
                s2 = client.factorize(other, solver="pangulu",
                                      block_size=16)["session"]
                stats = client.stats()
                resident = [s["session"] for s in stats["sessions"]]
                assert resident == [s2]
                evictions = stats["metrics"]["session_cache"]["evictions"]
                assert evictions.get("lru") == 1
                with pytest.raises(ServerError) as exc:
                    client.solve(s1, rng.standard_normal(a.nrows))
                assert exc.value.code == "UNKNOWN_SESSION"
                # the evicted pattern re-factorizes from scratch and
                # solves to full accuracy — nothing stale survived
                info = client.factorize(a, solver="pangulu", block_size=16)
                assert info["session"] == s1
                assert info["fast_path"] is False
                x_true = rng.standard_normal(a.nrows)
                x = client.solve(s1, matvec(a, x_true), refine=1)
                assert (np.linalg.norm(x - x_true)
                        < 1e-10 * np.linalg.norm(x_true))

    def test_ttl_evicts_idle_sessions(self, rng):
        a = circuit_like(80, seed=5)
        with BackgroundServer(batch_window=0.01, session_ttl=0.2) as bg:
            with SolverClient(bg.host, bg.port) as client:
                s = client.factorize(a, solver="pangulu",
                                     block_size=16)["session"]
                assert client.stats()["config"]["session_ttl"] == 0.2
                time.sleep(0.4)
                stats = client.stats()  # the stats dispatch runs the sweep
                assert stats["sessions"] == []
                ev = stats["metrics"]["session_cache"]["evictions"]
                assert ev.get("ttl") == 1
                with pytest.raises(ServerError) as exc:
                    client.solve(s, rng.standard_normal(a.nrows))
                assert exc.value.code == "UNKNOWN_SESSION"
                info = client.factorize(a, solver="pangulu", block_size=16)
                assert info["fast_path"] is False
                x_true = rng.standard_normal(a.nrows)
                x = client.solve(s, matvec(a, x_true), refine=1)
                assert (np.linalg.norm(x - x_true)
                        < 1e-10 * np.linalg.norm(x_true))

    def test_touch_defers_ttl(self):
        """Steady traffic keeps a session resident past its TTL."""
        a = circuit_like(80, seed=9)
        with BackgroundServer(batch_window=0.01, session_ttl=0.5) as bg:
            with SolverClient(bg.host, bg.port) as client:
                s = client.factorize(a, solver="pangulu",
                                     block_size=16)["session"]
                for _ in range(4):
                    time.sleep(0.2)
                    client.refactorize(s, data=a.data)
                stats = client.stats()
                assert [x["session"] for x in stats["sessions"]] == [s]
                assert not stats["metrics"]["session_cache"]["evictions"]

"""Unit tests for the §3.5.1 Schur-fusion integration."""

import numpy as np
import pytest

from repro.core import (
    FusedBackend,
    TaskType,
    build_block_dag,
    make_scheduler,
    merge_schur_tasks,
)
from repro.core.executor import EstimateBackend, ReplayBackend
from repro.gpusim import GPUCostModel, RTX5090
from repro.matrices import circuit_like, poisson2d
from repro.ordering import compute_ordering
from repro.solvers import SuperLUSolver, resimulate
from repro.sparse import permute_symmetric, uniform_partition
from repro.symbolic import block_fill


@pytest.fixture(scope="module")
def dag():
    a = circuit_like(150, seed=5)
    b = permute_symmetric(a, compute_ordering(a, "mindeg"))
    part = uniform_partition(150, 10)
    return build_block_dag(block_fill(b, part), part)


class TestMergeStructure:
    def test_groups_by_step_and_row(self, dag):
        fusion = merge_schur_tasks(dag)
        keys = set()
        for t in fusion.dag.tasks:
            if t.type == TaskType.SSSSM:
                key = (t.k, t.i)
                assert key not in keys  # one fused task per (k, i)
                keys.add(key)

    def test_non_schur_tasks_untouched(self, dag):
        fusion = merge_schur_tasks(dag)
        orig = {t.name: 0 for t in TaskType}
        for t in dag.tasks:
            orig[t.type.name] += 1
        fused = fusion.dag.counts_by_type()
        assert fused["GETRF"] == orig["GETRF"]
        assert fused["TSTRF"] == orig["TSTRF"]
        assert fused["GEESM"] == orig["GEESM"]
        assert fused["SSSSM"] <= orig["SSSSM"]

    def test_members_partition_original_tasks(self, dag):
        fusion = merge_schur_tasks(dag)
        all_members = sorted(t for group in fusion.members for t in group)
        assert all_members == list(range(dag.n_tasks))

    def test_fused_dag_acyclic(self, dag):
        merge_schur_tasks(dag).dag.validate()

    def test_flops_conserved(self, dag):
        fusion = merge_schur_tasks(dag)
        assert (fusion.dag.total_flops_est() == dag.total_flops_est())

    def test_fuse_stats_sums_members(self, dag):
        from repro.kernels.tilekernels import KernelStats

        stats = {t: KernelStats(flops=t + 1, bytes=2 * t) for t in
                 range(dag.n_tasks)}
        fusion = merge_schur_tasks(dag)
        fused = fusion.fuse_stats(stats)
        assert (sum(s.flops for s in fused.values())
                == sum(s.flops for s in stats.values()))

    def test_cuda_blocks_accumulate(self, dag):
        fusion = merge_schur_tasks(dag)
        for new_tid, group in enumerate(fusion.members):
            if len(group) > 1:
                fused = fusion.dag.tasks[new_tid]
                assert fused.cuda_blocks == sum(
                    dag.tasks[t].cuda_blocks for t in group)
                break
        else:
            pytest.skip("no multi-member group in this DAG")


class TestFusedExecution:
    def test_scheduling_fused_dag_completes(self, dag):
        fusion = merge_schur_tasks(dag)
        r = make_scheduler("trojan", fusion.dag, EstimateBackend(),
                           GPUCostModel(RTX5090)).run()
        assert r.task_count == fusion.dag.n_tasks

    def test_fused_backend_runs_all_members(self, dag):
        fusion = merge_schur_tasks(dag)
        seen = []

        class Spy:
            def run_task(self, task, atomic):
                from repro.kernels.tilekernels import KernelStats

                seen.append(task.tid)
                return KernelStats(flops=1, bytes=1)

        backend = FusedBackend(Spy(), fusion, dag)
        for t in fusion.dag.tasks:
            backend.run_task(t, False)
        assert sorted(seen) == list(range(dag.n_tasks))

    def test_superlu_integration_identical_factors(self, medium_poisson):
        base = SuperLUSolver(medium_poisson, max_supernode=8,
                             scheduler="serial").factorize()
        fused = SuperLUSolver(medium_poisson, max_supernode=8,
                              scheduler="trojan",
                              merge_schur=True).factorize()
        assert np.allclose(base.L.to_dense(), fused.L.to_dense())
        assert np.allclose(base.U.to_dense(), fused.U.to_dense())

    def test_fusion_reduces_scheduled_tasks(self):
        a = circuit_like(200, seed=9)
        base = SuperLUSolver(a, scheduler="serial").factorize()
        plain = resimulate(base, "trojan", RTX5090)
        fused = resimulate(base, "trojan", RTX5090, merge_schur=True)
        assert fused.task_count < plain.task_count
        assert fused.total_flops == plain.total_flops
        assert fused.sched_overhead < plain.sched_overhead

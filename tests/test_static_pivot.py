"""Tests for the MC64-style static pivoting permutation."""

import numpy as np
import pytest

from repro.kernels.reference_lu import reference_lu
from repro.matrices import circuit_like, poisson2d
from repro.ordering import static_pivot_permutation
from repro.sparse import CSRMatrix, matvec, permute_rows


class TestMatching:
    def test_identity_on_dominant_matrix(self):
        # an already strongly dominant diagonal is the optimal matching
        a = poisson2d(6)
        perm = static_pivot_permutation(a)
        assert np.array_equal(perm, np.arange(36))

    def test_repairs_zero_diagonal(self, rng):
        # a cyclic permutation matrix scaled by values: diagonal all zero
        n = 10
        dense = np.zeros((n, n))
        for i in range(n):
            dense[i, (i + 1) % n] = 1.0 + rng.random()
        a = CSRMatrix.from_dense(dense)
        perm = static_pivot_permutation(a)
        permuted = permute_rows(a, perm)
        assert np.all(permuted.diagonal() != 0)

    def test_maximises_product_on_small_case(self):
        # 2x2 where off-diagonal matching wins:
        # [[1, 10], [10, 1]] → swap rows for product 100 vs 1
        a = CSRMatrix.from_dense(np.array([[1.0, 10.0], [10.0, 1.0]]))
        perm = static_pivot_permutation(a)
        permuted = permute_rows(a, perm)
        d = np.abs(permuted.diagonal())
        assert np.prod(d) == pytest.approx(100.0)

    def test_never_decreases_diagonal_product(self, rng):
        for seed in range(5):
            r = np.random.default_rng(seed)
            dense = (r.random((12, 12)) < 0.5) * r.standard_normal((12, 12))
            dense += np.diag(r.random(12) * 0.1 + 0.01)  # weak diagonal
            a = CSRMatrix.from_dense(dense)
            perm = static_pivot_permutation(a)
            before = np.prod(np.abs(np.diag(dense)) + 1e-300)
            after = np.prod(np.abs(permute_rows(a, perm).diagonal())
                            + 1e-300)
            assert after >= before * (1 - 1e-9)

    def test_structurally_singular_rejected(self):
        dense = np.zeros((3, 3))
        dense[:, 0] = 1.0  # columns 1,2 empty
        with pytest.raises(ValueError):
            static_pivot_permutation(CSRMatrix.from_dense(dense))

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError):
            static_pivot_permutation(CSRMatrix.empty((3, 4)))

    def test_result_is_permutation(self):
        a = circuit_like(60, seed=13)
        perm = static_pivot_permutation(a)
        assert np.array_equal(np.sort(perm), np.arange(60))


class TestOptimality:
    def test_matches_reference_assignment_solver(self):
        scipy_opt = pytest.importorskip("scipy.optimize")
        for seed in range(40):
            r = np.random.default_rng(seed)
            n = int(r.integers(3, 15))
            dense = (r.random((n, n)) < 0.4) * r.standard_normal((n, n))
            dense += np.diag(r.random(n) + 0.5)
            a = CSRMatrix.from_dense(dense)
            perm = static_pivot_permutation(a)
            mine = np.sum(np.log(np.abs(permute_rows(a, perm).diagonal())))
            w = np.full((n, n), -1e9)
            nz = dense != 0
            w[nz] = np.log(np.abs(dense[nz]))
            rows, cols = scipy_opt.linear_sum_assignment(-w)
            best = w[rows, cols].sum()
            assert mine >= best - 1e-8, seed


class TestPipelineIntegration:
    def test_enables_pivot_free_lu_on_weak_diagonal(self, rng):
        # a matrix the pivot-free path cannot factor directly becomes
        # factorisable after static pivoting — SuperLU_DIST's exact recipe
        n = 12
        dense = np.zeros((n, n))
        for i in range(n):
            dense[i, (i + 3) % n] = 5.0 + rng.random()   # strong off-diag
            dense[i, i] = 0.0
        dense += (rng.random((n, n)) < 0.2) * 0.01
        np.fill_diagonal(dense, 0.0)
        a = CSRMatrix.from_dense(dense)
        with pytest.raises(ZeroDivisionError):
            reference_lu(a)
        perm = static_pivot_permutation(a)
        pivoted = permute_rows(a, perm)
        res = reference_lu(pivoted)
        # solve A x = b through the pivoted factorisation
        x_true = rng.standard_normal(n)
        b = matvec(a, x_true)
        x = res.solve(b[perm])
        assert np.allclose(x, x_true, atol=1e-8)

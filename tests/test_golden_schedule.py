"""Golden-batch regression for the vectorized Algorithm-1 loop.

The goldens in ``tests/golden/trojan_batches.json`` were captured from the
original per-task scheduler implementation *before* the ScheduleArena
rewrite.  These tests pin the rewrite to them bit-for-bit (batch
decomposition, kernel count, simulated kernel time and total flops), and
additionally run the live per-task reference implementation
(:class:`repro.core.ReferenceTrojanScheduler`) side by side with the
production scheduler on every golden configuration.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

from repro.core import ReferenceTrojanScheduler
from repro.core.executor import EstimateBackend
from repro.gpusim import GPUCostModel

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def _load_generate_module():
    spec = importlib.util.spec_from_file_location(
        "golden_generate", GOLDEN_DIR / "generate.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


_GEN = _load_generate_module()
_CONFIGS = {name: (dag, gpu, kwargs)
            for name, dag, gpu, kwargs in _GEN.golden_configs()}
_GOLDEN = json.loads(
    (GOLDEN_DIR / "trojan_batches.json").read_text(encoding="utf-8")
)


@pytest.mark.parametrize("name", sorted(_CONFIGS))
def test_matches_checked_in_golden(name):
    """The production scheduler reproduces the pre-rewrite goldens."""
    dag, gpu, kwargs = _CONFIGS[name]
    got = _GEN.schedule_record(dag, gpu, **kwargs)
    want = _GOLDEN[name]
    assert got["n_tasks"] == want["n_tasks"]
    assert got["kernel_count"] == want["kernel_count"]
    assert got["total_flops"] == want["total_flops"]
    assert got["batches"] == want["batches"]
    assert got["kernel_time"] == pytest.approx(want["kernel_time"],
                                               rel=1e-12)


@pytest.mark.parametrize("name", sorted(_CONFIGS))
def test_matches_live_reference(name):
    """Vectorized loop == per-task reference loop, batch for batch."""
    dag, gpu, kwargs = _CONFIGS[name]
    from repro.core import TrojanHorseScheduler

    vec = TrojanHorseScheduler(
        dag, EstimateBackend(), GPUCostModel(gpu), **kwargs
    ).run()
    ref = ReferenceTrojanScheduler(
        dag, EstimateBackend(), GPUCostModel(gpu), **kwargs
    ).run()
    assert vec.kernel_count == ref.kernel_count
    assert vec.task_count == ref.task_count
    assert vec.total_flops == ref.total_flops
    for bv, br in zip(vec.batches, ref.batches):
        assert sorted(bv.task_ids) == sorted(br.task_ids)
        assert bv.t_start == pytest.approx(br.t_start, rel=1e-12)
        assert bv.t_end == pytest.approx(br.t_end, rel=1e-12)
        assert bv.flops == br.flops
        assert bv.bytes == br.bytes
        assert bv.cuda_blocks == br.cuda_blocks
        assert bv.types == br.types
    assert vec.kernel_time == pytest.approx(ref.kernel_time, rel=1e-12)
    assert vec.sched_overhead == pytest.approx(ref.sched_overhead, rel=1e-12)


def test_golden_file_covers_all_configs():
    """Every generated config has a golden entry and vice versa."""
    assert set(_GOLDEN) == set(_CONFIGS)

"""Unit tests for the analysis/reporting helpers."""

import numpy as np
import pytest

from repro.analysis import (
    binned_gflops_timeline,
    format_table,
    geomean,
    kernel_share,
    phase_shares,
    speedup_summary,
)
from repro.core import build_block_dag, make_scheduler
from repro.core.executor import EstimateBackend
from repro.gpusim import GPUCostModel, RTX5090
from repro.matrices import circuit_like
from repro.ordering import compute_ordering
from repro.sparse import permute_symmetric, uniform_partition
from repro.symbolic import block_fill


@pytest.fixture(scope="module")
def schedule():
    a = circuit_like(120, seed=8)
    b = permute_symmetric(a, compute_ordering(a, "mindeg"))
    part = uniform_partition(120, 12)
    dag = build_block_dag(block_fill(b, part), part, sparse_tiles=True)
    return make_scheduler("trojan", dag, EstimateBackend(),
                          GPUCostModel(RTX5090)).run()


class TestGeomean:
    def test_known_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geomean([7.0]) == pytest.approx(7.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_below_arithmetic_mean(self, rng):
        vals = rng.random(50) + 0.5
        assert geomean(vals) <= vals.mean() + 1e-12


class TestSpeedupSummary:
    def test_basic(self):
        s = speedup_summary([10.0, 20.0], [5.0, 2.0])
        assert np.allclose(s["speedups"], [2.0, 10.0])
        assert s["max"] == 10.0
        assert s["min"] == 2.0
        assert s["regressions"] == 0

    def test_regressions_counted(self):
        s = speedup_summary([1.0, 1.0], [2.0, 0.5])
        assert s["regressions"] == 1

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            speedup_summary([1.0], [1.0, 2.0])

    def test_zero_enhanced_time_rejected(self):
        # regression: used to divide by zero and publish geomean=inf
        # under a RuntimeWarning instead of failing loudly
        with pytest.raises(ValueError, match="enhanced time at index 1"):
            speedup_summary([10.0, 20.0], [5.0, 0.0])

    def test_zero_enhanced_never_warns_inf(self):
        with np.errstate(divide="raise"):
            with pytest.raises(ValueError):
                speedup_summary([1.0], [0.0])

    def test_zero_baseline_time_rejected(self):
        with pytest.raises(ValueError, match="baseline time at index 0"):
            speedup_summary([0.0, 20.0], [5.0, 2.0])

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="index 1"):
            speedup_summary([1.0, -3.0], [1.0, 1.0])

    def test_nan_time_rejected(self):
        with pytest.raises(ValueError, match="index 0"):
            speedup_summary([1.0, 1.0], [float("nan"), 1.0])


class TestTimeline:
    def test_flops_conserved(self, schedule):
        t, g = binned_gflops_timeline(schedule, n_bins=32)
        width = t[1] - t[0]
        total = (g * width).sum() * 1e9
        assert total == pytest.approx(schedule.total_flops, rel=1e-6)

    def test_shapes(self, schedule):
        t, g = binned_gflops_timeline(schedule, n_bins=17)
        assert t.shape == g.shape == (17,)
        assert np.all(np.diff(t) > 0)

    def test_nonnegative(self, schedule):
        _, g = binned_gflops_timeline(schedule)
        assert np.all(g >= 0)

    def test_empty_schedule_rejected(self, schedule):
        import copy

        empty = copy.copy(schedule)
        empty.batches = []
        with pytest.raises(ValueError):
            binned_gflops_timeline(empty)


class TestBreakdowns:
    def test_kernel_share_sums(self, schedule):
        s = kernel_share(schedule)
        assert s["kernel_s"] + s["sched_s"] == pytest.approx(s["total_s"])
        assert 0 < s["kernel_share"] <= 1

    def test_phase_shares_normalised(self):
        s = phase_shares({"reorder": 1.0, "symbolic": 1.0, "numeric": 8.0})
        assert sum(s.values()) == pytest.approx(1.0)
        assert s["numeric"] == pytest.approx(0.8)

    def test_phase_shares_wrong_keys(self):
        with pytest.raises(ValueError):
            phase_shares({"a": 1.0})

    def test_phase_shares_zero_total(self):
        with pytest.raises(ValueError):
            phase_shares({"reorder": 0.0, "symbolic": 0.0, "numeric": 0.0})


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "x"], [["a", 1], ["bbbb", 22]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert all(len(l) == len(lines[1]) for l in lines[1:])

    def test_float_compaction(self):
        out = format_table(["v"], [[0.000012345]])
        assert "e-" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

"""TraceVerifier: distsim round-trip plus hand-tampered traces.

A real distributed simulation with ``record_trace=True`` must produce a
trace the verifier accepts; each targeted tampering (lost send, early
start, fabricated memory load) must then be caught with its own code.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cluster import DistributedSimulator, H100_CLUSTER
from repro.core import build_block_dag
from repro.core.executor import EstimateBackend
from repro.matrices import poisson2d
from repro.sparse import uniform_partition
from repro.symbolic import block_fill
from repro.verify import report as rep
from repro.verify.trace import DistTrace, SendRecord, verify_trace


@pytest.fixture(scope="module")
def dag():
    a = poisson2d(16)
    part = uniform_partition(a.nrows, 8)
    return build_block_dag(block_fill(a, part), part)


@pytest.fixture(scope="module")
def trace(dag):
    result = DistributedSimulator(
        dag, EstimateBackend(), H100_CLUSTER, nprocs=4, policy="trojan",
        record_trace=True,
    ).run()
    assert result.trace is not None
    return result.trace


class TestRoundTrip:
    def test_simulated_trace_is_clean(self, trace):
        report = verify_trace(trace)
        assert report.ok, report.describe()
        assert "memory" in report.checks

    def test_trace_covers_everything(self, dag, trace):
        assert trace.n_tasks == dag.n_tasks
        assert (trace.t_start >= 0).all()
        assert (trace.t_done >= trace.t_start).all()
        assert trace.nprocs == 4
        # cross-rank edges exist on a 4-rank grid, so sends were logged
        cross = trace.rank[trace.edges[:, 0]] != trace.rank[trace.edges[:, 1]]
        assert cross.any()
        assert trace.sends

    def test_trace_off_by_default(self, dag):
        result = DistributedSimulator(
            dag, EstimateBackend(), H100_CLUSTER, nprocs=2,
            policy="serial",
        ).run()
        assert result.trace is None


def _with_sends(trace, sends):
    return dataclasses.replace(trace, sends=sends)


class TestTampering:
    def test_lost_send(self, trace):
        victim = trace.sends[0]
        sends = [dataclasses.replace(victim, t_recv=None)] \
            + trace.sends[1:]
        report = verify_trace(_with_sends(trace, sends))
        assert rep.TRACE_UNMATCHED_SEND in report.codes()

    def test_recv_before_send(self, trace):
        victim = trace.sends[0]
        sends = [dataclasses.replace(victim, t_recv=victim.t_send - 1.0)] \
            + trace.sends[1:]
        report = verify_trace(_with_sends(trace, sends))
        assert rep.TRACE_UNMATCHED_SEND in report.codes()

    def test_missing_send_for_edge(self, trace):
        # drop every send for one cross-rank edge entirely
        victim = trace.sends[0]
        sends = [s for s in trace.sends
                 if (s.tid, s.succ) != (victim.tid, victim.succ)]
        report = verify_trace(_with_sends(trace, sends))
        assert rep.TRACE_MISSING_SEND in report.codes()

    def test_early_consume_same_rank(self, trace):
        same = np.flatnonzero(
            trace.rank[trace.edges[:, 0]] == trace.rank[trace.edges[:, 1]])
        prod, cons = (int(x) for x in trace.edges[same[0]])
        t_start = trace.t_start.copy()
        # halfway through the producer: strictly before its completion
        # but still a valid (non-negative) timestamp
        t_start[cons] = 0.5 * trace.t_done[prod]
        report = verify_trace(dataclasses.replace(trace, t_start=t_start))
        assert rep.TRACE_EARLY_CONSUME in report.codes()

    def test_early_consume_cross_rank(self, trace):
        victim = trace.sends[0]
        t_start = trace.t_start.copy()
        t_start[victim.succ] = victim.t_send  # before arrival
        tampered = dataclasses.replace(trace, t_start=t_start)
        if victim.t_recv > victim.t_send:
            report = verify_trace(tampered)
            assert rep.TRACE_EARLY_CONSUME in report.codes()

    def test_task_never_ran(self, trace):
        t_start = trace.t_start.copy()
        t_start[0] = -1.0
        report = verify_trace(dataclasses.replace(trace, t_start=t_start))
        assert rep.TRACE_TASK_MISSING in report.codes()

    def test_memory_budget(self, trace):
        inflated = dataclasses.replace(
            trace,
            per_rank_bytes=np.full(trace.nprocs,
                                   2 * trace.mem_budget_bytes),
        )
        report = verify_trace(inflated)
        over = report.by_code(rep.TRACE_MEM_BUDGET)
        assert len(over) == trace.nprocs
        assert {v.rank for v in over} == set(range(trace.nprocs))


class TestFromDict:
    def test_json_round_trip(self):
        payload = {
            "nprocs": 2,
            "tasks": [
                {"tid": 0, "rank": 0, "t_start": 0.0, "t_done": 1.0},
                {"tid": 1, "rank": 1, "t_start": 2.0, "t_done": 3.0},
            ],
            "edges": [[0, 1]],
            "sends": [{"tid": 0, "succ": 1, "src": 0, "dst": 1,
                       "t_send": 1.0, "t_recv": 1.5, "bytes": 128}],
        }
        trace = DistTrace.from_dict(payload)
        assert trace.n_tasks == 2
        assert trace.sends == [SendRecord(0, 1, 0, 1, 1.0, 1.5, 128)]
        assert verify_trace(trace).ok

    def test_null_recv_means_undelivered(self):
        payload = {
            "nprocs": 2,
            "tasks": [
                {"tid": 0, "rank": 0, "t_start": 0.0, "t_done": 1.0},
                {"tid": 1, "rank": 1, "t_start": 2.0, "t_done": 3.0},
            ],
            "edges": [[0, 1]],
            "sends": [{"tid": 0, "succ": 1, "src": 0, "dst": 1,
                       "t_send": 1.0, "t_recv": None, "bytes": 128}],
        }
        report = verify_trace(DistTrace.from_dict(payload))
        assert rep.TRACE_UNMATCHED_SEND in report.codes()

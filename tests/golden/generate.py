"""Regenerate the golden trojan-scheduler batch sequences.

Run from the repo root with the *reference* scheduler semantics in place::

    PYTHONPATH=src python tests/golden/generate.py

The goldens pin the batch decomposition of the Algorithm-1 loop: each
file records, per configuration, the sequence of batches (sorted task
ids) plus the simulated kernel time.  ``tests/test_golden_schedule.py``
asserts the production scheduler still reproduces them bit-for-bit, so
any rewrite of the hot loop (e.g. the vectorized ScheduleArena) is
checked against the original per-task implementation.
"""

from __future__ import annotations

import json
import pathlib

from repro.core import build_block_dag, make_scheduler
from repro.core.executor import EstimateBackend
from repro.gpusim import GPUCostModel, RTX5060TI, RTX5090
from repro.matrices import circuit_like, poisson2d
from repro.ordering import compute_ordering
from repro.sparse import permute_symmetric, uniform_partition
from repro.symbolic import block_fill

GOLDEN_DIR = pathlib.Path(__file__).parent


def golden_configs():
    """The (name, dag, gpu, kwargs) tuples the goldens cover."""
    def dag_of(a, bs, sparse):
        b = permute_symmetric(a, compute_ordering(a, "mindeg"))
        part = uniform_partition(a.nrows, bs)
        return build_block_dag(block_fill(b, part), part, sparse_tiles=sparse)

    circuit = dag_of(circuit_like(180, seed=2), 12, True)
    poisson = dag_of(poisson2d(16), 8, False)
    wide = dag_of(circuit_like(240, seed=7), 16, True)
    return [
        ("circuit180_b12_trojan", circuit, RTX5090, {}),
        ("circuit180_b12_trojan_slack2", circuit, RTX5090,
         {"critical_slack": 2}),
        ("poisson256_b8_trojan", poisson, RTX5090, {}),
        ("poisson256_b8_trojan_small_gpu", poisson, RTX5060TI, {}),
        ("circuit240_b16_trojan_cap24", wide, RTX5090,
         {"max_batch_tasks": 24}),
    ]


def schedule_record(dag, gpu, **kwargs) -> dict:
    """Run the trojan scheduler and serialise its batch decomposition."""
    result = make_scheduler(
        "trojan", dag, EstimateBackend(), GPUCostModel(gpu), **kwargs
    ).run()
    return {
        "n_tasks": dag.n_tasks,
        "kernel_count": result.kernel_count,
        "kernel_time": result.kernel_time,
        "total_flops": result.total_flops,
        "batches": [sorted(int(t) for t in b.task_ids)
                    for b in result.batches],
    }


def main() -> None:
    out = {}
    for name, dag, gpu, kwargs in golden_configs():
        out[name] = schedule_record(dag, gpu, **kwargs)
        print(f"{name}: {out[name]['kernel_count']} batches, "
              f"{out[name]['n_tasks']} tasks")
    path = GOLDEN_DIR / "trojan_batches.json"
    path.write_text(json.dumps(out, indent=1), encoding="utf-8")
    print(f"written {path}")


if __name__ == "__main__":
    main()

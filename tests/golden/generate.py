"""Regenerate the golden trojan-scheduler batch sequences.

Run from the repo root with the *reference* scheduler semantics in place::

    PYTHONPATH=src python tests/golden/generate.py

The goldens pin the batch decomposition of the Algorithm-1 loop: each
file records, per configuration, the sequence of batches (sorted task
ids) plus the simulated kernel time.  ``tests/test_golden_schedule.py``
asserts the production scheduler still reproduces them bit-for-bit, so
any rewrite of the hot loop (e.g. the vectorized ScheduleArena) is
checked against the original per-task implementation.

The configuration list itself lives in :mod:`repro.verify.golden`, so
``python -m repro verify`` can rebuild each DAG and statically verify
the checked-in batch sequences against the same definitions.
"""

from __future__ import annotations

import json
import pathlib

from repro.core import make_scheduler
from repro.core.executor import EstimateBackend
from repro.gpusim import GPUCostModel
from repro.verify.golden import golden_configs

GOLDEN_DIR = pathlib.Path(__file__).parent


def schedule_record(dag, gpu, **kwargs) -> dict:
    """Run the trojan scheduler and serialise its batch decomposition."""
    result = make_scheduler(
        "trojan", dag, EstimateBackend(), GPUCostModel(gpu), **kwargs
    ).run()
    return {
        "n_tasks": dag.n_tasks,
        "kernel_count": result.kernel_count,
        "kernel_time": result.kernel_time,
        "total_flops": result.total_flops,
        "batches": [sorted(int(t) for t in b.task_ids)
                    for b in result.batches],
    }


def main() -> None:
    out = {}
    for name, dag, gpu, kwargs in golden_configs():
        out[name] = schedule_record(dag, gpu, **kwargs)
        print(f"{name}: {out[name]['kernel_count']} batches, "
              f"{out[name]['n_tasks']} tasks")
    path = GOLDEN_DIR / "trojan_batches.json"
    path.write_text(json.dumps(out, indent=1), encoding="utf-8")
    print(f"written {path}")


if __name__ == "__main__":
    main()

"""Tests for the Cholesky substrate (solver-agnosticism of the layer)."""

import numpy as np
import pytest

from repro.core.task import TaskType
from repro.kernels.dense import dense_potrf
from repro.matrices import poisson2d, spd_random
from repro.solvers import CholeskySolver
from repro.solvers.cholesky import build_cholesky_dag
from repro.sparse import (
    CSRMatrix,
    matvec,
    permute_symmetric,
    spgemm,
    uniform_partition,
)
from repro.symbolic import block_fill


class TestDensePOTRF:
    def test_reconstruction(self, rng):
        b = rng.standard_normal((10, 10))
        a = b @ b.T + 10 * np.eye(10)
        a0 = a.copy()
        dense_potrf(a)
        l = np.tril(a)
        assert np.allclose(l @ l.T, a0)

    def test_not_spd_raises(self):
        a = np.array([[1.0, 2.0], [2.0, 1.0]])  # indefinite
        with pytest.raises(ValueError):
            dense_potrf(a)

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            dense_potrf(np.ones((2, 3)))


class TestCholeskyDAG:
    def _dag(self):
        a = poisson2d(8)
        part = uniform_partition(64, 8)
        fill = np.tril(block_fill(a, part))
        return build_cholesky_dag(fill, part), fill, part

    def test_acyclic(self):
        dag, _, _ = self._dag()
        dag.validate()

    def test_one_potrf_per_diagonal(self):
        dag, _, part = self._dag()
        assert dag.counts_by_type()["GETRF"] == part.nblocks

    def test_no_geesm_tasks(self):
        # the symmetric factorisation has no upper-panel solves
        dag, _, _ = self._dag()
        assert dag.counts_by_type()["GEESM"] == 0

    def test_updates_only_lower(self):
        dag, _, _ = self._dag()
        for t in dag.tasks:
            if t.type == TaskType.SSSSM:
                assert t.i >= t.j

    def test_update_count_formula(self):
        dag, fill, part = self._dag()
        nb = part.nblocks
        expect = 0
        for k in range(nb):
            c = int(fill[k + 1:, k].sum())
            expect += c * (c + 1) // 2
        assert dag.counts_by_type()["SSSSM"] == expect


class TestCholeskySolver:
    @pytest.mark.parametrize("scheduler", ["serial", "levelbatch",
                                           "streams", "trojan"])
    def test_factorisation_correct(self, scheduler, rng):
        a = spd_random(120, seed=5)
        solver = CholeskySolver(a, block_size=24, scheduler=scheduler)
        r = solver.factorize()
        llt = spgemm(r.L, r.L.transpose()).to_dense()
        ref = permute_symmetric(a, r.perm).to_dense()
        assert np.allclose(llt, ref, atol=1e-9)

    def test_solve(self, rng):
        a = poisson2d(10)
        x_true = rng.standard_normal(100)
        b = matvec(a, x_true)
        x = CholeskySolver(a, block_size=20).solve(b)
        assert np.allclose(x, x_true)

    def test_trojan_fewer_kernels_same_factor(self):
        a = spd_random(140, seed=8)
        base = CholeskySolver(a, block_size=20, scheduler="serial").factorize()
        th = CholeskySolver(a, block_size=20, scheduler="trojan").factorize()
        assert th.schedule.kernel_count < base.schedule.kernel_count
        assert np.allclose(base.L.to_dense(), th.L.to_dense())

    def test_asymmetric_rejected(self, rng):
        d = rng.standard_normal((8, 8)) + 8 * np.eye(8)
        with pytest.raises(ValueError):
            CholeskySolver(CSRMatrix.from_dense(d))

    def test_l_lower_triangular(self):
        a = poisson2d(8)
        r = CholeskySolver(a, block_size=16).factorize()
        assert np.allclose(np.triu(r.L.to_dense(), 1), 0.0)

    def test_phase_times_recorded(self):
        a = poisson2d(8)
        r = CholeskySolver(a, block_size=16).factorize()
        assert set(r.phase_seconds) == {"reorder", "symbolic", "numeric"}

"""Unit tests for the CSR format."""

import numpy as np
import pytest

from repro.sparse import CSRMatrix


class TestInvariants:
    def test_check_passes_on_canonical(self, random_sparse):
        a, _ = random_sparse
        a.check()

    def test_check_rejects_bad_indptr_length(self):
        a = CSRMatrix((2, 2), [0, 1], [0], [1.0])
        with pytest.raises(ValueError):
            a.check()

    def test_check_rejects_unsorted_row(self):
        a = CSRMatrix((1, 4), [0, 2], [2, 0], [1.0, 2.0])
        with pytest.raises(ValueError):
            a.check()

    def test_check_rejects_duplicate_in_row(self):
        a = CSRMatrix((1, 4), [0, 2], [1, 1], [1.0, 2.0])
        with pytest.raises(ValueError):
            a.check()

    def test_check_rejects_out_of_range_col(self):
        a = CSRMatrix((1, 2), [0, 1], [5], [1.0])
        with pytest.raises(ValueError):
            a.check()

    def test_check_rejects_decreasing_indptr(self):
        a = CSRMatrix((2, 2), [0, 1, 0], [0], [1.0])
        with pytest.raises(ValueError):
            a.check()

    def test_check_rejects_indptr_end_mismatch(self):
        a = CSRMatrix((2, 2), [0, 1, 3], [0, 1], [1.0, 2.0])
        with pytest.raises(ValueError):
            a.check()


class TestBasics:
    def test_shape_properties(self, random_sparse):
        a, dense = random_sparse
        assert (a.nrows, a.ncols) == dense.shape
        assert a.nnz == np.count_nonzero(dense)

    def test_row_lengths(self, random_sparse):
        a, dense = random_sparse
        assert np.array_equal(a.row_lengths(),
                              (dense != 0).sum(axis=1))

    def test_row_slice(self, random_sparse):
        a, dense = random_sparse
        cols, vals = a.row_slice(3)
        expect = np.flatnonzero(dense[3])
        assert np.array_equal(cols, expect)
        assert np.allclose(vals, dense[3, expect])

    def test_empty_constructor(self):
        a = CSRMatrix.empty((3, 5))
        a.check()
        assert a.nnz == 0
        assert a.to_dense().shape == (3, 5)

    def test_identity(self):
        a = CSRMatrix.identity(4)
        assert np.allclose(a.to_dense(), np.eye(4))

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_dense(np.ones(3))


class TestTranspose:
    def test_transpose_values(self, random_sparse):
        a, dense = random_sparse
        t = a.transpose()
        t.check()
        assert np.allclose(t.to_dense(), dense.T)

    def test_double_transpose_identity(self, random_sparse):
        a, dense = random_sparse
        assert np.allclose(a.transpose().transpose().to_dense(), dense)

    def test_transpose_rectangular(self, rng):
        dense = (rng.random((5, 11)) < 0.3) * rng.standard_normal((5, 11))
        a = CSRMatrix.from_dense(dense)
        assert np.allclose(a.transpose().to_dense(), dense.T)

    def test_transpose_empty(self):
        t = CSRMatrix.empty((3, 7)).transpose()
        t.check()
        assert t.shape == (7, 3)


class TestOperations:
    def test_diagonal(self, rng):
        dense = rng.standard_normal((6, 6))
        dense[2, 2] = 0.0
        a = CSRMatrix.from_dense(dense)
        d = a.diagonal()
        expect = np.diag(dense)
        assert np.allclose(d, expect)

    def test_diagonal_rectangular(self, rng):
        dense = rng.standard_normal((4, 7))
        a = CSRMatrix.from_dense(dense)
        expect = np.array([dense[i, i] for i in range(4)])
        assert np.allclose(a.diagonal(), expect)

    def test_prune_drops_small(self):
        dense = np.array([[1.0, 1e-12], [0.0, 2.0]])
        a = CSRMatrix.from_dense(dense)
        p = a.prune(tol=1e-10)
        assert p.nnz == 2

    def test_prune_preserves_values(self, random_sparse):
        a, dense = random_sparse
        assert np.allclose(a.prune().to_dense(), dense)

    def test_copy_is_deep(self, random_sparse):
        a, dense = random_sparse
        b = a.copy()
        b.data[:] = 0
        assert np.allclose(a.to_dense(), dense)

    def test_pattern_symmetrized(self):
        dense = np.array([[1.0, 2.0], [0.0, 3.0]])
        a = CSRMatrix.from_dense(dense)
        s = a.pattern_symmetrized()
        assert np.allclose(s.to_dense(), np.array([[1.0, 1.0], [1.0, 1.0]]))

    def test_matmul_operator_matrix(self, random_sparse, rng):
        a, dense = random_sparse
        other = CSRMatrix.from_dense(np.eye(40))
        assert np.allclose((a @ other).to_dense(), dense)

    def test_matmul_operator_vector(self, random_sparse, rng):
        a, dense = random_sparse
        x = rng.standard_normal(40)
        assert np.allclose(a @ x, dense @ x)

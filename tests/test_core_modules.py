"""Unit tests for the four Trojan Horse modules (Prioritizer, Container,
Collector, Executor) in isolation."""

import numpy as np
import pytest

from repro.core import (
    BlockTaskMapping,
    Collector,
    Container,
    Executor,
    Prioritizer,
    ReplayBackend,
    Task,
    TaskType,
    build_block_dag,
)
from repro.core.executor import EstimateBackend
from repro.gpusim import GPUCostModel, GPUSpec, RTX5090
from repro.kernels.tilekernels import KernelStats
from repro.matrices import poisson2d
from repro.sparse import uniform_partition
from repro.symbolic import block_fill


def _make_dag():
    a = poisson2d(8)
    part = uniform_partition(64, 8)
    return build_block_dag(block_fill(a, part), part)


def _task(tid, ttype=TaskType.SSSSM, i=0, j=0, k=0, rows=8, cols=8):
    return Task(tid=tid, type=ttype, k=k, i=i, j=j, rows=rows, cols=cols,
                nnz=rows * cols, flops_est=100, bytes_est=800)


class TestPrioritizer:
    def test_pops_longest_chain_first(self):
        dag = _make_dag()
        cp = dag.critical_path_lengths()
        prio = Prioritizer(dag, cp)
        ready = dag.initial_ready()
        prio.push_many(ready)
        popped = [prio.pop_most_urgent() for _ in range(len(ready))]
        cps = [cp[t] for t in popped]
        assert cps == sorted(cps, reverse=True)

    def test_distance_breaks_ties(self):
        dag = _make_dag()
        cp = np.ones(dag.n_tasks, dtype=np.int64)  # all chains equal
        prio = Prioritizer(dag, cp)
        # two ready tasks with different distances
        far = next(t for t in dag.tasks if t.distance > 0)
        near = next(t for t in dag.tasks if t.distance == 0)
        prio.push_many([far.tid, near.tid])
        assert prio.pop_most_urgent() == near.tid

    def test_critical_test_relative_to_ready_pool(self):
        dag = _make_dag()
        cp = dag.critical_path_lengths()
        prio = Prioritizer(dag, cp)
        prio.push_many(dag.initial_ready())
        top = prio.pop_most_urgent()
        assert prio.is_critical(top)

    def test_slack_widens_critical_set(self):
        dag = _make_dag()
        cp = dag.critical_path_lengths()
        strict = Prioritizer(dag, cp, critical_slack=0)
        loose = Prioritizer(dag, cp, critical_slack=10 ** 6)
        ready = dag.initial_ready()
        strict.push_many(ready)
        loose.push_many(ready)
        strict_crit = sum(strict.is_critical(strict.pop_most_urgent())
                          for _ in range(len(ready)))
        loose_crit = sum(loose.is_critical(loose.pop_most_urgent())
                         for _ in range(len(ready)))
        assert loose_crit >= strict_crit
        assert loose_crit == len(ready)

    def test_drain_empties_pool(self):
        dag = _make_dag()
        prio = Prioritizer(dag, dag.critical_path_lengths())
        prio.push_many(dag.initial_ready())
        drained = prio.drain()
        assert not prio.has_ready
        assert len(drained) == len(dag.initial_ready())

    def test_mismatched_cp_rejected(self):
        dag = _make_dag()
        with pytest.raises(ValueError):
            Prioritizer(dag, np.ones(3, dtype=np.int64))


class TestContainer:
    def test_pops_nearest_diagonal_first(self):
        c = Container()
        far = _task(1, i=0, j=5)
        near = _task(2, i=2, j=3)
        c.push(far)
        c.push(near)
        assert c.pop() == 2

    def test_urgent_tasks_first_regardless_of_distance(self):
        c = Container()
        near = _task(1, i=0, j=0)
        far_urgent = _task(2, i=0, j=9)
        c.push(near)
        c.push(far_urgent, urgent=True)
        assert c.pop() == 2

    def test_fifo_among_equal_priority(self):
        c = Container()
        a = _task(1, i=0, j=1, k=0)
        b = _task(2, i=1, j=2, k=0)
        c.push(a)
        c.push(b)
        assert c.pop() == 1

    def test_earlier_step_first(self):
        c = Container()
        late = _task(1, i=5, j=6, k=5)
        early = _task(2, i=1, j=2, k=1)
        c.push(late)
        c.push(early)
        assert c.pop() == 2

    def test_peek_does_not_remove(self):
        c = Container()
        c.push(_task(7))
        assert c.peek() == 7
        assert len(c) == 1

    def test_is_empty(self):
        c = Container()
        assert c.is_empty
        c.push(_task(1))
        assert not c.is_empty
        c.pop()
        assert c.is_empty


class TestCollector:
    def _gpu(self, sms=4, blocks_per_sm=2, shmem_kb=1):
        return GPUSpec("toy", sm_count=sms, fp64_gflops=100, mem_bw_gbs=100,
                       memory_gb=1, shared_mem_per_sm_kb=shmem_kb,
                       max_blocks_per_sm=blocks_per_sm)

    def test_block_budget_enforced(self):
        coll = Collector(self._gpu(sms=4, blocks_per_sm=2))  # 8 blocks
        t1 = _task(1, rows=8, cols=6)   # SSSSM: 6 blocks
        t2 = _task(2, rows=8, cols=6)
        assert coll.try_push(t1)
        assert not coll.try_push(t2)  # 12 > 8

    def test_oversized_task_runs_alone(self):
        coll = Collector(self._gpu(sms=1, blocks_per_sm=1))  # 1 block budget
        huge = _task(1, rows=100, cols=100)
        assert coll.try_push(huge)
        assert coll.is_full

    def test_shared_memory_budget_enforced(self):
        gpu = self._gpu(sms=2, blocks_per_sm=1000, shmem_kb=1)  # 2 KiB
        coll = Collector(gpu)
        # GETRF rows=32 → 32*8=256 B per block, 4 cols → 1 KiB
        t1 = Task(tid=1, type=TaskType.GETRF, k=0, i=0, j=0, rows=32, cols=4,
                  nnz=128)
        t2 = Task(tid=2, type=TaskType.GETRF, k=1, i=1, j=1, rows=32, cols=4,
                  nnz=128)
        t3 = Task(tid=3, type=TaskType.GETRF, k=2, i=2, j=2, rows=32, cols=4,
                  nnz=128)
        assert coll.try_push(t1)
        assert coll.try_push(t2)
        assert not coll.try_push(t3)

    def test_max_tasks_cap(self):
        coll = Collector(self._gpu(sms=100, blocks_per_sm=100), max_tasks=2)
        assert coll.try_push(_task(1))
        assert coll.try_push(_task(2))
        assert not coll.try_push(_task(3))
        assert coll.is_full

    def test_reset_clears_state(self):
        coll = Collector(self._gpu())
        coll.try_push(_task(1))
        coll.reset()
        assert coll.is_empty
        assert coll.cuda_blocks == 0
        assert coll.shared_mem_bytes == 0

    def test_tracks_usage(self):
        coll = Collector(self._gpu(sms=100, blocks_per_sm=100, shmem_kb=1000))
        t = _task(1, rows=8, cols=6)
        coll.try_push(t)
        assert coll.cuda_blocks == t.cuda_blocks
        assert coll.shared_mem_bytes == t.shared_mem_bytes


class TestBlockTaskMapping:
    def test_layout_and_lookup(self):
        # the Figure-7 example: 10, 9, 11, 15 blocks
        tasks = [
            Task(0, TaskType.GETRF, 0, 0, 0, rows=10, cols=10, nnz=100),
            Task(1, TaskType.TSTRF, 0, 1, 0, rows=9, cols=10, nnz=90),
            Task(2, TaskType.GEESM, 0, 0, 1, rows=10, cols=11, nnz=110),
            Task(3, TaskType.SSSSM, 0, 1, 1, rows=9, cols=15, nnz=135),
        ]
        m = BlockTaskMapping.build(tasks)
        assert m.total_blocks == 45
        assert np.array_equal(m.starts, [0, 10, 19, 30])
        assert m.task_of_block(0) == 0
        assert m.task_of_block(9) == 0
        assert m.task_of_block(10) == 1
        assert m.task_of_block(18) == 1
        assert m.task_of_block(19) == 2
        assert m.task_of_block(29) == 2
        assert m.task_of_block(30) == 3
        assert m.task_of_block(44) == 3

    def test_out_of_range_rejected(self):
        m = BlockTaskMapping.build([_task(0)])
        with pytest.raises(IndexError):
            m.task_of_block(m.total_blocks)
        with pytest.raises(IndexError):
            m.task_of_block(-1)

    def test_every_block_maps_consistently(self):
        tasks = [_task(i, rows=3 + i, cols=2 + i) for i in range(6)]
        m = BlockTaskMapping.build(tasks)
        for b in range(m.total_blocks):
            ti = m.task_of_block(b)
            assert m.starts[ti] <= b < m.starts[ti] + tasks[ti].cuda_blocks


class TestExecutor:
    def test_empty_batch_rejected(self):
        ex = Executor(GPUCostModel(RTX5090), EstimateBackend())
        with pytest.raises(ValueError):
            ex.run_batch([], 0.0)

    def test_batch_record_accounting(self):
        ex = Executor(GPUCostModel(RTX5090), EstimateBackend())
        tasks = [_task(i) for i in range(5)]
        rec = ex.run_batch(tasks, 1.0)
        assert rec.n_tasks == 5
        assert rec.t_start == 1.0
        assert rec.t_end > 1.0
        assert rec.flops == sum(t.flops_est for t in tasks)
        assert rec.types["SSSSM"] == 5

    def test_atomic_conflict_detection(self):
        # two SSSSM on the same target: atomic accounting adds bytes
        ex = Executor(GPUCostModel(RTX5090), EstimateBackend())
        same = [_task(0, i=3, j=4, k=0), _task(1, i=3, j=4, k=1)]
        different = [_task(0, i=3, j=4, k=0), _task(1, i=3, j=5, k=1)]
        rec_conflict = ex.run_batch(same, 0.0)
        rec_clean = ex.run_batch(different, 0.0)
        assert rec_conflict.bytes > rec_clean.bytes

    def test_replay_backend_returns_recorded(self):
        stats = {0: KernelStats(flops=123, bytes=456)}
        backend = ReplayBackend(stats)
        out = backend.run_task(_task(0), False)
        assert out.flops == 123 and out.bytes == 456

    def test_gflops_property(self):
        ex = Executor(GPUCostModel(RTX5090), EstimateBackend())
        rec = ex.run_batch([_task(0)], 0.0)
        assert rec.gflops == pytest.approx(rec.flops / rec.duration / 1e9)

"""Coverage for smaller paths: CSC, estimate backend, partitions, fusion
edge cases."""

import numpy as np
import pytest

from repro.core import Task, TaskType, build_block_dag, merge_schur_tasks
from repro.core.executor import EstimateBackend
from repro.matrices import poisson2d
from repro.sparse import CSCMatrix, CSRMatrix, uniform_partition
from repro.sparse.blocking import Partition
from repro.symbolic import block_fill


class TestCSC:
    def test_roundtrip_csr(self, random_sparse):
        a, dense = random_sparse
        csc = a.to_csc()
        assert np.allclose(csc.to_dense(), dense)
        assert np.allclose(csc.to_csr().to_dense(), dense)

    def test_col_slice(self, random_sparse):
        a, dense = random_sparse
        csc = a.to_csc()
        rows, vals = csc.col_slice(5)
        expect = np.flatnonzero(dense[:, 5])
        assert np.array_equal(rows, expect)
        assert np.allclose(vals, dense[expect, 5])

    def test_col_lengths(self, random_sparse):
        a, dense = random_sparse
        csc = a.to_csc()
        assert np.array_equal(csc.col_lengths(), (dense != 0).sum(axis=0))

    def test_from_csr_classmethod(self, random_sparse):
        a, dense = random_sparse
        assert np.allclose(CSCMatrix.from_csr(a).to_dense(), dense)

    def test_nnz(self, random_sparse):
        a, _ = random_sparse
        assert a.to_csc().nnz == a.nnz


class TestPartitionScalars:
    def test_block_of_scalar(self):
        p = uniform_partition(10, 3)
        assert p.block_of(0) == 0
        assert p.block_of(9) == 3

    def test_n_property(self):
        p = Partition(np.array([0, 4, 10]))
        assert p.n == 10
        assert p.nblocks == 2


class TestEstimateBackend:
    def test_atomic_adds_bytes(self):
        t = Task(tid=0, type=TaskType.SSSSM, k=0, i=1, j=1, rows=4, cols=4,
                 nnz=16, flops_est=100, bytes_est=800)
        b = EstimateBackend()
        plain = b.run_task(t, False)
        atomic = b.run_task(t, True)
        assert atomic.bytes > plain.bytes
        assert atomic.flops == plain.flops


class TestFusionEdges:
    def test_dag_without_schur_is_unchanged(self):
        # a block-diagonal pattern has no SSSSM tasks at all
        part = uniform_partition(8, 2)
        fill = np.eye(4, dtype=bool)
        dag = build_block_dag(fill, part)
        fusion = merge_schur_tasks(dag)
        assert fusion.dag.n_tasks == dag.n_tasks
        assert all(len(g) == 1 for g in fusion.members)

    def test_single_group_fusion(self):
        a = poisson2d(4)  # tiny: one diag block chain
        part = uniform_partition(16, 8)
        dag = build_block_dag(block_fill(a, part), part)
        fusion = merge_schur_tasks(dag)
        fusion.dag.validate()
        assert fusion.dag.n_tasks <= dag.n_tasks


class TestScheduleResultGuards:
    def test_zero_batches_gflops(self):
        from repro.core.scheduler import ScheduleResult

        r = ScheduleResult(scheduler="x", device="y", batches=[],
                           kernel_count=0, task_count=0, kernel_time=0.0,
                           sched_overhead=0.0, total_flops=0,
                           counts_by_type={})
        assert r.gflops == 0.0
        assert r.mean_batch_size == 0.0

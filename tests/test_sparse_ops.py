"""Unit tests for sparse operations (matvec, SpGEMM, add, trisolve)."""

import numpy as np
import pytest

from repro.sparse import (
    CSRMatrix,
    matvec,
    sparse_add,
    sparse_scale,
    spgemm,
    triangular_solve,
)


class TestMatvec:
    def test_against_dense(self, random_sparse, rng):
        a, dense = random_sparse
        x = rng.standard_normal(40)
        assert np.allclose(matvec(a, x), dense @ x)

    def test_empty_rows_ok(self):
        a = CSRMatrix.from_dense(np.array([[0.0, 0.0], [1.0, 0.0]]))
        assert np.allclose(matvec(a, np.ones(2)), [0.0, 1.0])

    def test_zero_matrix(self):
        a = CSRMatrix.empty((3, 4))
        assert np.allclose(matvec(a, np.ones(4)), np.zeros(3))

    def test_dimension_mismatch(self, random_sparse):
        a, _ = random_sparse
        with pytest.raises(ValueError):
            matvec(a, np.ones(41))


class TestMatvec2D:
    """The multi-RHS operand path (regression: ``np.bincount`` weights
    are 1-D only, so 2-D operands need folded bin indices)."""

    def test_against_dense(self, random_sparse, rng):
        a, dense = random_sparse
        x = rng.standard_normal((40, 5))
        y = matvec(a, x)
        assert y.shape == (40, 5)
        assert np.allclose(y, dense @ x)

    def test_bitwise_column_equivariant(self, random_sparse, rng):
        # each column of the 2-D product must be the exact bits of the
        # 1-D product of that column — what makes RHS folding (and the
        # refinement residual on folded RHS) bit-safe
        a, _ = random_sparse
        x = rng.standard_normal((40, 7))
        y = matvec(a, x)
        for k in range(7):
            assert np.array_equal(y[:, k], matvec(a, x[:, k]))

    def test_single_column_matches_vector(self, random_sparse, rng):
        a, _ = random_sparse
        x = rng.standard_normal(40)
        assert np.array_equal(matvec(a, x[:, None])[:, 0], matvec(a, x))

    def test_zero_matrix(self):
        a = CSRMatrix.empty((3, 4))
        y = matvec(a, np.ones((4, 2)))
        assert y.shape == (3, 2)
        assert np.all(y == 0.0)

    def test_zero_columns(self, random_sparse):
        a, _ = random_sparse
        assert matvec(a, np.zeros((40, 0))).shape == (40, 0)

    def test_dimension_mismatch(self, random_sparse):
        a, _ = random_sparse
        with pytest.raises(ValueError):
            matvec(a, np.ones((41, 3)))

    def test_3d_operand_raises(self, random_sparse):
        a, _ = random_sparse
        with pytest.raises(ValueError, match="1-D or 2-D"):
            matvec(a, np.ones((40, 2, 2)))


class TestSpGEMM:
    def test_against_dense(self, rng):
        da = (rng.random((13, 17)) < 0.3) * rng.standard_normal((13, 17))
        db = (rng.random((17, 11)) < 0.3) * rng.standard_normal((17, 11))
        c = spgemm(CSRMatrix.from_dense(da), CSRMatrix.from_dense(db))
        c.check()
        assert np.allclose(c.to_dense(), da @ db)

    def test_identity_left(self, random_sparse):
        a, dense = random_sparse
        i = CSRMatrix.identity(40)
        assert np.allclose(spgemm(i, a).to_dense(), dense)

    def test_identity_right(self, random_sparse):
        a, dense = random_sparse
        i = CSRMatrix.identity(40)
        assert np.allclose(spgemm(a, i).to_dense(), dense)

    def test_empty_operand(self):
        a = CSRMatrix.empty((3, 4))
        b = CSRMatrix.identity(4)
        assert spgemm(a, b).nnz == 0

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            spgemm(CSRMatrix.empty((3, 4)), CSRMatrix.empty((5, 3)))

    def test_associativity(self, rng):
        mats = []
        for shape in [(6, 7), (7, 8), (8, 5)]:
            d = (rng.random(shape) < 0.4) * rng.standard_normal(shape)
            mats.append(CSRMatrix.from_dense(d))
        left = spgemm(spgemm(mats[0], mats[1]), mats[2])
        right = spgemm(mats[0], spgemm(mats[1], mats[2]))
        assert np.allclose(left.to_dense(), right.to_dense())


class TestAddScale:
    def test_add_against_dense(self, rng):
        da = (rng.random((9, 9)) < 0.4) * rng.standard_normal((9, 9))
        db = (rng.random((9, 9)) < 0.4) * rng.standard_normal((9, 9))
        s = sparse_add(CSRMatrix.from_dense(da), CSRMatrix.from_dense(db),
                       2.0, -3.0)
        assert np.allclose(s.to_dense(), 2 * da - 3 * db)

    def test_add_shape_mismatch(self):
        with pytest.raises(ValueError):
            sparse_add(CSRMatrix.empty((2, 2)), CSRMatrix.empty((3, 3)))

    def test_scale(self, random_sparse):
        a, dense = random_sparse
        assert np.allclose(sparse_scale(a, -0.5).to_dense(), -0.5 * dense)

    def test_scale_does_not_mutate(self, random_sparse):
        a, dense = random_sparse
        sparse_scale(a, 0.0)
        assert np.allclose(a.to_dense(), dense)


class TestTriangularSolve:
    def test_lower(self, rng):
        l = np.tril(rng.standard_normal((15, 15))) + 8 * np.eye(15)
        b = rng.standard_normal(15)
        x = triangular_solve(CSRMatrix.from_dense(l), b, lower=True)
        assert np.allclose(l @ x, b)

    def test_upper(self, rng):
        u = np.triu(rng.standard_normal((15, 15))) + 8 * np.eye(15)
        b = rng.standard_normal(15)
        x = triangular_solve(CSRMatrix.from_dense(u), b, lower=False)
        assert np.allclose(u @ x, b)

    def test_unit_diagonal_lower(self, rng):
        l = np.tril(rng.standard_normal((10, 10)), -1) + np.eye(10)
        b = rng.standard_normal(10)
        # drop the stored unit diagonal entirely; unit_diagonal fills it in
        strict = np.tril(l, -1)
        x = triangular_solve(CSRMatrix.from_dense(strict), b,
                             lower=True, unit_diagonal=True)
        assert np.allclose(l @ x, b)

    def test_multiple_rhs(self, rng):
        l = np.tril(rng.standard_normal((12, 12))) + 6 * np.eye(12)
        b = rng.standard_normal((12, 4))
        x = triangular_solve(CSRMatrix.from_dense(l), b, lower=True)
        assert x.shape == (12, 4)
        assert np.allclose(l @ x, b)

    def test_zero_diagonal_raises(self):
        l = np.array([[1.0, 0.0], [2.0, 0.0]])
        with pytest.raises(ZeroDivisionError):
            triangular_solve(CSRMatrix.from_dense(l), np.ones(2), lower=True)

    def test_not_lower_triangular_raises(self, rng):
        d = rng.standard_normal((5, 5)) + 5 * np.eye(5)
        with pytest.raises(ValueError):
            triangular_solve(CSRMatrix.from_dense(d), np.ones(5), lower=True)

    def test_not_upper_triangular_raises(self, rng):
        d = rng.standard_normal((5, 5)) + 5 * np.eye(5)
        with pytest.raises(ValueError):
            triangular_solve(CSRMatrix.from_dense(d), np.ones(5), lower=False)

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            triangular_solve(CSRMatrix.empty((3, 4)), np.ones(4))

    def test_zero_diagonal_error_names_row(self):
        l = np.array([[1.0, 0.0, 0.0],
                      [2.0, 0.0, 0.0],
                      [3.0, 1.0, 4.0]])
        with pytest.raises(ZeroDivisionError, match="row 1"):
            triangular_solve(CSRMatrix.from_dense(l), np.ones(3), lower=True)

    def test_rhs_wrong_ndim_raises(self, rng):
        l = np.tril(rng.standard_normal((4, 4))) + 5 * np.eye(4)
        with pytest.raises(ValueError, match="1-D or 2-D"):
            triangular_solve(CSRMatrix.from_dense(l),
                             np.ones((4, 2, 2)), lower=True)

    def test_rhs_wrong_length_raises(self, rng):
        l = np.tril(rng.standard_normal((4, 4))) + 5 * np.eye(4)
        with pytest.raises(ValueError, match="4"):
            triangular_solve(CSRMatrix.from_dense(l), np.ones(5), lower=True)

    def test_rhs_non_numeric_dtype_raises(self, rng):
        l = np.tril(rng.standard_normal((4, 4))) + 5 * np.eye(4)
        with pytest.raises(TypeError, match="dtype"):
            triangular_solve(CSRMatrix.from_dense(l),
                             np.array(["a", "b", "c", "d"]), lower=True)

    def test_integer_rhs_promoted(self, rng):
        l = np.tril(rng.standard_normal((6, 6))) + 6 * np.eye(6)
        b = np.arange(6)
        x = triangular_solve(CSRMatrix.from_dense(l), b, lower=True)
        assert x.dtype == np.float64
        assert np.allclose(l @ x, b)

"""Unit tests for the dense building blocks and tile kernels."""

import numpy as np
import pytest

from repro.kernels import (
    dense_getrf,
    dense_getrf_pivoted,
    gemm_flops_dense,
    gemm_update,
    geesm_kernel,
    getrf_flops_dense,
    getrf_flops_sparse,
    getrf_kernel,
    ssssm_flops_sparse,
    ssssm_kernel,
    trsm_flops_dense,
    trsm_lower_unit,
    trsm_upper,
    tstrf_kernel,
)
from repro.kernels.flops import trsm_flops_sparse


def _unpack(lu: np.ndarray):
    return np.tril(lu, -1) + np.eye(lu.shape[0]), np.triu(lu)


class TestDenseGETRF:
    def test_reconstruction(self, rng):
        a = rng.standard_normal((15, 15)) + 15 * np.eye(15)
        a0 = a.copy()
        dense_getrf(a)
        l, u = _unpack(a)
        assert np.allclose(l @ u, a0)

    def test_zero_pivot_raises(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ZeroDivisionError):
            dense_getrf(a)

    def test_trailing_zero_pivot_raises(self):
        a = np.array([[1.0, 1.0], [1.0, 1.0]])  # second pivot cancels
        with pytest.raises(ZeroDivisionError):
            dense_getrf(a)

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            dense_getrf(np.ones((3, 4)))

    def test_one_by_one(self):
        a = np.array([[3.0]])
        dense_getrf(a)
        assert a[0, 0] == 3.0


class TestPivotedGETRF:
    def test_reconstruction_with_pivots(self, rng):
        a = rng.standard_normal((12, 12))
        a0 = a.copy()
        _, piv = dense_getrf_pivoted(a)
        l, u = _unpack(a)
        p = np.eye(12)
        for k, pk in enumerate(piv):
            if pk != k:
                p[[k, pk]] = p[[pk, k]]
        assert np.allclose(l @ u, p @ a0)

    def test_handles_zero_leading_pivot(self):
        a = np.array([[0.0, 1.0], [2.0, 3.0]])
        dense_getrf_pivoted(a)  # must not raise

    def test_singular_raises(self):
        a = np.zeros((3, 3))
        with pytest.raises(ZeroDivisionError):
            dense_getrf_pivoted(a)

    def test_growth_bounded_on_dominant(self, rng):
        # pivoting should be a no-op on strictly dominant matrices
        a = rng.standard_normal((10, 10))
        a += np.diag(np.abs(a).sum(axis=1) + 1)
        a0 = a.copy()
        _, piv = dense_getrf_pivoted(a.copy())
        assert np.array_equal(piv, np.arange(10))
        b = a0.copy()
        dense_getrf(b)  # pivot-free agrees
        c = a0.copy()
        dense_getrf_pivoted(c)
        assert np.allclose(b, c)


class TestTRSM:
    def test_lower_unit(self, rng):
        lu = rng.standard_normal((9, 9))
        b = rng.standard_normal((9, 5))
        x = b.copy()
        trsm_lower_unit(lu, x)
        l = np.tril(lu, -1) + np.eye(9)
        assert np.allclose(l @ x, b)

    def test_upper(self, rng):
        lu = rng.standard_normal((9, 9)) + 9 * np.eye(9)
        b = rng.standard_normal((6, 9))
        x = b.copy()
        trsm_upper(lu, x)
        assert np.allclose(x @ np.triu(lu), b)

    def test_upper_zero_diag_raises(self):
        u = np.zeros((3, 3))
        with pytest.raises(ZeroDivisionError):
            trsm_upper(u, np.ones((2, 3)))

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            trsm_lower_unit(np.eye(3), np.ones((4, 2)))
        with pytest.raises(ValueError):
            trsm_upper(np.eye(3), np.ones((2, 4)))

    def test_gemm_update(self, rng):
        c = rng.standard_normal((4, 6))
        a = rng.standard_normal((4, 5))
        b = rng.standard_normal((5, 6))
        c0 = c.copy()
        gemm_update(c, a, b)
        assert np.allclose(c, c0 - a @ b)


class TestFlopCounts:
    def test_getrf_dense_cubic(self):
        # exact: sum_{r=1}^{m-1} (r + 2 r^2)
        assert getrf_flops_dense(2) == 3
        assert getrf_flops_dense(3) == 3 + 2 * 9 // 2 + 1  # 1+2 + 2+8 = 13
        m = 30
        assert abs(getrf_flops_dense(m) - 2 * m ** 3 / 3) / (2 * m ** 3 / 3) < 0.15

    def test_getrf_sparse_equals_dense_when_full(self):
        pat = np.ones((8, 8), dtype=bool)
        assert getrf_flops_sparse(pat) == getrf_flops_dense(8)

    def test_getrf_sparse_diagonal_is_zero(self):
        assert getrf_flops_sparse(np.eye(6, dtype=bool)) == 0

    def test_trsm_dense(self):
        assert trsm_flops_dense(8, 5) == 320

    def test_gemm_dense(self):
        assert gemm_flops_dense(3, 4, 5) == 120

    def test_ssssm_sparse_exact_formula(self):
        l = np.zeros((4, 3), dtype=bool)
        u = np.zeros((3, 5), dtype=bool)
        l[:, 0] = True        # col 0 of L: 4 nonzeros
        u[0, :2] = True       # row 0 of U: 2 nonzeros
        assert ssssm_flops_sparse(l, u) == 2 * 4 * 2

    def test_ssssm_sparse_matches_dense_when_full(self):
        l = np.ones((4, 3), dtype=bool)
        u = np.ones((3, 5), dtype=bool)
        assert ssssm_flops_sparse(l, u) == gemm_flops_dense(4, 3, 5)

    def test_trsm_sparse_scales_with_nnz(self):
        pat = np.triu(np.ones((6, 6), dtype=bool))
        assert trsm_flops_sparse(10, pat) < trsm_flops_sparse(100, pat)


class TestTileKernels:
    def test_two_by_two_block_lu(self, rng):
        n, bs = 20, 10
        m = rng.standard_normal((n, n))
        m += np.diag(np.abs(m).sum(axis=1) + 1)
        m0 = m.copy()
        a11 = m[:bs, :bs].copy(); a12 = m[:bs, bs:].copy()
        a21 = m[bs:, :bs].copy(); a22 = m[bs:, bs:].copy()
        getrf_kernel(a11)
        tstrf_kernel(a21, a11)
        geesm_kernel(a12, a11)
        ssssm_kernel(a22, a21, a12)
        getrf_kernel(a22)
        l11, u11 = _unpack(a11)
        l22, u22 = _unpack(a22)
        lg = np.zeros((n, n)); ug = np.zeros((n, n))
        lg[:bs, :bs] = l11; lg[bs:, :bs] = a21; lg[bs:, bs:] = l22
        ug[:bs, :bs] = u11; ug[:bs, bs:] = a12; ug[bs:, bs:] = u22
        assert np.allclose(lg @ ug, m0)

    def test_dense_stats(self, rng):
        t = rng.standard_normal((8, 8)) + 8 * np.eye(8)
        s = getrf_kernel(t, sparse=False)
        assert s.flops == getrf_flops_dense(8)
        assert s.bytes > 0

    def test_sparse_stats_smaller_on_sparse_tile(self, rng):
        t = np.diag(rng.random(8) + 1)
        t[7, 0] = 0.5
        s_sparse = getrf_kernel(t.copy(), sparse=True)
        s_dense = getrf_kernel(t.copy(), sparse=False)
        assert s_sparse.flops < s_dense.flops

    def test_ssssm_atomic_counts_extra_bytes(self, rng):
        c1 = rng.standard_normal((6, 6))
        c2 = c1.copy()
        a = rng.standard_normal((6, 4))
        b = rng.standard_normal((4, 6))
        s_plain = ssssm_kernel(c1, a, b, atomic=False)
        s_atomic = ssssm_kernel(c2, a, b, atomic=True)
        assert s_atomic.bytes > s_plain.bytes
        assert s_atomic.flops == s_plain.flops
        assert np.allclose(c1, c2)  # arithmetic identical

    def test_sparse_and_dense_same_arithmetic(self, rng):
        t1 = rng.standard_normal((8, 8)) + 10 * np.eye(8)
        t2 = t1.copy()
        getrf_kernel(t1, sparse=False)
        getrf_kernel(t2, sparse=True)
        assert np.allclose(t1, t2)

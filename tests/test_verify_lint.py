"""repro.verify.lint: every rule fires, waivers suppress, repo is clean."""

from __future__ import annotations

import pathlib
import textwrap

import pytest

from repro.verify import report as rep
from repro.verify.lint import (
    HOT_NNZ_MODULES,
    RULES,
    lint_file,
    lint_paths,
    lint_source,
)

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def _codes(source, path="<string>", **kw):
    return [v.code for v in lint_source(textwrap.dedent(source),
                                        path=path, **kw)]


class TestPerNnzLoop:
    HOT = "src/repro/sparse/somefile.py"

    def test_range_over_indptr(self):
        src = """
        def rowsum(m):
            out = 0.0
            for p in range(m.indptr[3], m.indptr[4]):
                out += m.data[p]
            return out
        """
        assert _codes(src, path=self.HOT) == [rep.LINT_NNZ_LOOP]

    def test_range_over_nnz_count(self):
        src = """
        def scan(tile_nnz):
            for p in range(tile_nnz):
                pass
        """
        assert _codes(src, path=self.HOT) == [rep.LINT_NNZ_LOOP]

    def test_iterating_indices_attr(self):
        src = """
        def walk(m):
            for c in m.indices:
                yield c
        """
        assert _codes(src, path=self.HOT) == [rep.LINT_NNZ_LOOP]

    def test_zip_of_indices_and_data(self):
        src = """
        def pairs(m):
            for c, v in zip(m.indices, m.data):
                yield c, v
        """
        assert _codes(src, path=self.HOT) == [rep.LINT_NNZ_LOOP]

    def test_row_loop_is_fine(self):
        src = """
        def diag(m, n):
            for i in range(n):
                yield m.diagonal(i)
        """
        assert _codes(src, path=self.HOT) == []

    def test_cold_module_exempt(self):
        src = """
        def debug_dump(m):
            for c in m.indices:
                print(c)
        """
        assert _codes(src, path="src/repro/analysis/dump.py") == []

    def test_waiver_on_line_above(self):
        src = """
        def rowsum(m):
            # verify: waive(per-nnz-loop)
            for c in m.indices:
                pass
        """
        assert _codes(src, path=self.HOT) == []


class TestUnpicklableRecipe:
    def test_lambda_in_recipe_ctor(self):
        src = "item = SweepItem(kind='x', make=lambda: 1)\n"
        assert _codes(src) == [rep.LINT_UNPICKLABLE_RECIPE]

    def test_lambda_in_submit(self):
        src = "fut = pool.submit(lambda: run(item))\n"
        assert _codes(src) == [rep.LINT_UNPICKLABLE_RECIPE]

    def test_named_function_is_fine(self):
        src = "item = SweepItem(kind='x', make=build_poisson)\n"
        assert _codes(src) == []


class TestCacheMutation:
    def test_method_mutation(self):
        src = """
        def load(cache, a):
            fill = cache.fill_for(a, build)
            fill.rows.append(1)
        """
        assert _codes(src) == [rep.LINT_CACHE_MUTATION]

    def test_attribute_assignment(self):
        src = """
        def load(cache, a):
            fill = cache.fill_for(a, build)
            fill.nnz = 0
        """
        assert _codes(src) == [rep.LINT_CACHE_MUTATION]

    def test_tuple_unpacking_tracked(self):
        src = """
        def load(cache, a):
            bfill, nnz, dag = cache.block_analysis_for(a, part, build)
            nnz[0] = 7
        """
        assert _codes(src) == [rep.LINT_CACHE_MUTATION]

    def test_reading_is_fine(self):
        src = """
        def load(cache, a):
            fill = cache.fill_for(a, build)
            return fill.nnz + 1
        """
        assert _codes(src) == []

    def test_taint_is_scoped_per_function(self):
        src = """
        def load(cache, a):
            fill = cache.fill_for(a, build)
            return fill

        def other(fill):
            fill.rows.append(1)
        """
        assert _codes(src) == []


class TestTaskTypeDispatch:
    def test_partial_table_flagged(self):
        src = "D = {TaskType.GETRF: f, TaskType.TSTRF: g}\n"
        found = lint_source(src)
        assert [v.code for v in found] == [rep.LINT_TASKTYPE_DISPATCH]
        assert "GEESM" in found[0].message
        assert "SSSSM" in found[0].message

    def test_full_table_fine(self):
        src = ("D = {TaskType.GETRF: f, TaskType.TSTRF: g,\n"
               "     TaskType.GEESM: h, TaskType.SSSSM: k,\n"
               "     TaskType.SPTRSV_DIAG: d, TaskType.SPTRSV_UPDATE: u}\n")
        assert _codes(src) == []

    def test_factor_only_table_flagged(self):
        src = ("D = {TaskType.GETRF: f, TaskType.TSTRF: g,\n"
               "     TaskType.GEESM: h, TaskType.SSSSM: k}\n")
        found = lint_source(src)
        assert [v.code for v in found] == [rep.LINT_TASKTYPE_DISPATCH]
        assert "SPTRSV_DIAG" in found[0].message

    def test_non_tasktype_dict_ignored(self):
        assert _codes("D = {'a': 1}\n") == []


class TestEventKindDispatch:
    CHAIN = """\
        def loop(kind, payload):
            if kind == K_READY:
                a(payload)
            elif kind == K_DONE:
                b(payload)
        """

    def test_partial_chain_flagged(self):
        found = lint_source(textwrap.dedent(self.CHAIN))
        assert [v.code for v in found] == [rep.LINT_EVENT_DISPATCH]
        assert "K_DEATH" in found[0].message

    def test_full_chain_fine(self):
        src = """\
            def loop(kind):
                if kind == K_READY:
                    a()
                elif kind == K_DONE:
                    b()
                elif kind == K_WAKE:
                    c()
                elif kind == K_XMIT:
                    d()
                elif kind == K_DELIVER:
                    e()
                elif kind == K_DEATH:
                    f()
            """
        assert _codes(src) == []

    def test_trailing_else_fine(self):
        src = """\
            def loop(kind):
                if kind == K_READY:
                    a()
                else:
                    b()
            """
        assert _codes(src) == []

    def test_membership_test_counts(self):
        src = """\
            def loop(kind):
                if kind in (K_READY, K_DONE, K_WAKE):
                    a()
                elif kind in (K_XMIT, K_DELIVER, K_DEATH):
                    b()
            """
        assert _codes(src) == []

    def test_non_kind_chain_ignored(self):
        assert _codes("if x == 1:\n    a()\nelif x == 2:\n    b()\n") == []

    def test_waiver_suppresses(self):
        src = ("# verify: waive(event-kind-dispatch)\n"
               "if kind == K_READY:\n    a()\n")
        assert _codes(src) == []

    def test_members_match_eventarena_constants(self):
        # the rule's hardcoded kind set must track the real constants
        import repro.cluster.eventarena as ea
        from repro.verify.lint import EVENT_KIND_MEMBERS

        real = {n for n in dir(ea)
                if n.startswith("K_") and isinstance(getattr(ea, n), int)}
        assert real == EVENT_KIND_MEMBERS


class TestArenaMutation:
    def test_direct_mutation_flagged(self):
        src = "def f(arena):\n    arena.stats.x = 1\n"
        assert _codes(src) == [rep.LINT_ARENA_MUTATION]

    def test_alias_mutation_flagged(self):
        src = ("def f(arena):\n"
               "    spill = arena._spill\n"
               "    spill.append(3)\n")
        assert _codes(src) == [rep.LINT_ARENA_MUTATION]

    def test_heappush_on_alias_flagged(self):
        src = ("def f(arena):\n"
               "    spill = arena._spill\n"
               "    heappush(spill, (1, 2))\n")
        assert _codes(src) == [rep.LINT_ARENA_MUTATION]

    def test_read_only_access_fine(self):
        src = ("def f(arena):\n"
               "    kinds = arena._kind\n"
               "    return kinds[0], len(arena._spill)\n")
        assert _codes(src) == []

    def test_effects_declaration_exempts(self):
        src = ("# verify: effects(arena)\n"
               "def run(arena):\n"
               "    arena.stats.x = 1\n")
        assert _codes(src) == []

    def test_declaration_covers_closures(self):
        src = ("# verify: effects(arena)\n"
               "def run(arena):\n"
               "    def flush():\n"
               "        arena._spill.clear()\n"
               "    flush()\n")
        assert _codes(src) == []

    def test_arena_class_methods_exempt(self):
        src = ("class EventArena:\n"
               "    def push(self, arena):\n"
               "        arena._spill.append(1)\n")
        assert _codes(src) == []

    def test_unrelated_mutation_fine(self):
        assert _codes("def f(xs):\n    xs.append(1)\n") == []


class TestDriver:
    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown lint rules"):
            lint_source("x = 1\n", rules={"no-such-rule"})

    def test_rule_subset(self):
        src = "D = {TaskType.GETRF: f}\nitem = SweepItem(f=lambda: 1)\n"
        only = lint_source(src, rules={"tasktype-dispatch"})
        assert [v.code for v in only] == [rep.LINT_TASKTYPE_DISPATCH]

    def test_lint_paths_walks_directories(self, tmp_path):
        pkg = tmp_path / "sparse"
        pkg.mkdir()
        (pkg / "bad.py").write_text(
            "def f(m):\n    for c in m.indices:\n        pass\n",
            encoding="utf-8")
        (pkg / "good.py").write_text("x = 1\n", encoding="utf-8")
        report = lint_paths([str(tmp_path)])
        assert [v.code for v in report.violations] == [rep.LINT_NNZ_LOOP]
        assert report.violations[0].file.endswith("bad.py")
        assert report.violations[0].line == 2

    def test_lint_file(self, tmp_path):
        f = tmp_path / "x.py"
        f.write_text("item = SweepItem(f=lambda: 1)\n", encoding="utf-8")
        assert [v.code for v in lint_file(f)] \
            == [rep.LINT_UNPICKLABLE_RECIPE]

    def test_repo_source_is_clean(self):
        report = lint_paths([str(SRC)], subject="lint:src/repro")
        assert report.ok, report.describe()

    def test_hot_module_set_names_real_paths(self):
        for frag in HOT_NNZ_MODULES:
            base = frag.rstrip("/")
            assert (SRC / base).exists(), frag

    def test_rules_registry_complete(self):
        assert set(RULES) == {"per-nnz-loop", "unpicklable-recipe",
                              "cache-mutation", "tasktype-dispatch",
                              "event-kind-dispatch", "arena-mutation"}

"""repro.verify.lint: every rule fires, waivers suppress, repo is clean."""

from __future__ import annotations

import pathlib
import textwrap

import pytest

from repro.verify import report as rep
from repro.verify.lint import (
    HOT_NNZ_MODULES,
    RULES,
    lint_file,
    lint_paths,
    lint_source,
)

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def _codes(source, path="<string>", **kw):
    return [v.code for v in lint_source(textwrap.dedent(source),
                                        path=path, **kw)]


class TestPerNnzLoop:
    HOT = "src/repro/sparse/somefile.py"

    def test_range_over_indptr(self):
        src = """
        def rowsum(m):
            out = 0.0
            for p in range(m.indptr[3], m.indptr[4]):
                out += m.data[p]
            return out
        """
        assert _codes(src, path=self.HOT) == [rep.LINT_NNZ_LOOP]

    def test_range_over_nnz_count(self):
        src = """
        def scan(tile_nnz):
            for p in range(tile_nnz):
                pass
        """
        assert _codes(src, path=self.HOT) == [rep.LINT_NNZ_LOOP]

    def test_iterating_indices_attr(self):
        src = """
        def walk(m):
            for c in m.indices:
                yield c
        """
        assert _codes(src, path=self.HOT) == [rep.LINT_NNZ_LOOP]

    def test_zip_of_indices_and_data(self):
        src = """
        def pairs(m):
            for c, v in zip(m.indices, m.data):
                yield c, v
        """
        assert _codes(src, path=self.HOT) == [rep.LINT_NNZ_LOOP]

    def test_row_loop_is_fine(self):
        src = """
        def diag(m, n):
            for i in range(n):
                yield m.diagonal(i)
        """
        assert _codes(src, path=self.HOT) == []

    def test_cold_module_exempt(self):
        src = """
        def debug_dump(m):
            for c in m.indices:
                print(c)
        """
        assert _codes(src, path="src/repro/analysis/dump.py") == []

    def test_waiver_on_line_above(self):
        src = """
        def rowsum(m):
            # verify: waive(per-nnz-loop)
            for c in m.indices:
                pass
        """
        assert _codes(src, path=self.HOT) == []


class TestUnpicklableRecipe:
    def test_lambda_in_recipe_ctor(self):
        src = "item = SweepItem(kind='x', make=lambda: 1)\n"
        assert _codes(src) == [rep.LINT_UNPICKLABLE_RECIPE]

    def test_lambda_in_submit(self):
        src = "fut = pool.submit(lambda: run(item))\n"
        assert _codes(src) == [rep.LINT_UNPICKLABLE_RECIPE]

    def test_named_function_is_fine(self):
        src = "item = SweepItem(kind='x', make=build_poisson)\n"
        assert _codes(src) == []


class TestCacheMutation:
    def test_method_mutation(self):
        src = """
        def load(cache, a):
            fill = cache.fill_for(a, build)
            fill.rows.append(1)
        """
        assert _codes(src) == [rep.LINT_CACHE_MUTATION]

    def test_attribute_assignment(self):
        src = """
        def load(cache, a):
            fill = cache.fill_for(a, build)
            fill.nnz = 0
        """
        assert _codes(src) == [rep.LINT_CACHE_MUTATION]

    def test_tuple_unpacking_tracked(self):
        src = """
        def load(cache, a):
            bfill, nnz, dag = cache.block_analysis_for(a, part, build)
            nnz[0] = 7
        """
        assert _codes(src) == [rep.LINT_CACHE_MUTATION]

    def test_reading_is_fine(self):
        src = """
        def load(cache, a):
            fill = cache.fill_for(a, build)
            return fill.nnz + 1
        """
        assert _codes(src) == []

    def test_taint_is_scoped_per_function(self):
        src = """
        def load(cache, a):
            fill = cache.fill_for(a, build)
            return fill

        def other(fill):
            fill.rows.append(1)
        """
        assert _codes(src) == []


class TestTaskTypeDispatch:
    def test_partial_table_flagged(self):
        src = "D = {TaskType.GETRF: f, TaskType.TSTRF: g}\n"
        found = lint_source(src)
        assert [v.code for v in found] == [rep.LINT_TASKTYPE_DISPATCH]
        assert "GEESM" in found[0].message
        assert "SSSSM" in found[0].message

    def test_full_table_fine(self):
        src = ("D = {TaskType.GETRF: f, TaskType.TSTRF: g,\n"
               "     TaskType.GEESM: h, TaskType.SSSSM: k,\n"
               "     TaskType.SPTRSV_DIAG: d, TaskType.SPTRSV_UPDATE: u}\n")
        assert _codes(src) == []

    def test_factor_only_table_flagged(self):
        src = ("D = {TaskType.GETRF: f, TaskType.TSTRF: g,\n"
               "     TaskType.GEESM: h, TaskType.SSSSM: k}\n")
        found = lint_source(src)
        assert [v.code for v in found] == [rep.LINT_TASKTYPE_DISPATCH]
        assert "SPTRSV_DIAG" in found[0].message

    def test_non_tasktype_dict_ignored(self):
        assert _codes("D = {'a': 1}\n") == []


class TestDriver:
    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown lint rules"):
            lint_source("x = 1\n", rules={"no-such-rule"})

    def test_rule_subset(self):
        src = "D = {TaskType.GETRF: f}\nitem = SweepItem(f=lambda: 1)\n"
        only = lint_source(src, rules={"tasktype-dispatch"})
        assert [v.code for v in only] == [rep.LINT_TASKTYPE_DISPATCH]

    def test_lint_paths_walks_directories(self, tmp_path):
        pkg = tmp_path / "sparse"
        pkg.mkdir()
        (pkg / "bad.py").write_text(
            "def f(m):\n    for c in m.indices:\n        pass\n",
            encoding="utf-8")
        (pkg / "good.py").write_text("x = 1\n", encoding="utf-8")
        report = lint_paths([str(tmp_path)])
        assert [v.code for v in report.violations] == [rep.LINT_NNZ_LOOP]
        assert report.violations[0].file.endswith("bad.py")
        assert report.violations[0].line == 2

    def test_lint_file(self, tmp_path):
        f = tmp_path / "x.py"
        f.write_text("item = SweepItem(f=lambda: 1)\n", encoding="utf-8")
        assert [v.code for v in lint_file(f)] \
            == [rep.LINT_UNPICKLABLE_RECIPE]

    def test_repo_source_is_clean(self):
        report = lint_paths([str(SRC)], subject="lint:src/repro")
        assert report.ok, report.describe()

    def test_hot_module_set_names_real_paths(self):
        for frag in HOT_NNZ_MODULES:
            base = frag.rstrip("/")
            assert (SRC / base).exists(), frag

    def test_rules_registry_complete(self):
        assert set(RULES) == {"per-nnz-loop", "unpicklable-recipe",
                              "cache-mutation", "tasktype-dispatch"}

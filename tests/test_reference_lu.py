"""Tests for the element-level reference LU and its role as an oracle."""

import numpy as np
import pytest

from repro.kernels.reference_lu import reference_lu
from repro.matrices import (
    cage_like,
    circuit_like,
    poisson2d,
    tridiagonal,
)
from repro.solvers import PanguLUSolver, SuperLUSolver
from repro.sparse import CSRMatrix, matvec, permute_symmetric, spgemm


class TestReferenceLU:
    @pytest.mark.parametrize("builder", [
        lambda: tridiagonal(25),
        lambda: poisson2d(7),
        lambda: circuit_like(60, seed=3),
        lambda: cage_like(50, seed=1),
    ])
    def test_reconstruction(self, builder):
        a = builder()
        res = reference_lu(a)
        lu = spgemm(res.L, res.U).to_dense()
        assert np.allclose(lu, a.to_dense(), atol=1e-10)

    def test_l_unit_lower(self):
        res = reference_lu(poisson2d(6))
        ld = res.L.to_dense()
        assert np.allclose(np.diag(ld), 1.0)
        assert np.allclose(np.triu(ld, 1), 0.0)

    def test_u_upper(self):
        res = reference_lu(poisson2d(6))
        assert np.allclose(np.tril(res.U.to_dense(), -1), 0.0)

    def test_solve(self, rng):
        a = circuit_like(80, seed=9)
        x_true = rng.standard_normal(80)
        b = matvec(a, x_true)
        x = reference_lu(a).solve(b)
        assert np.linalg.norm(x - x_true) / np.linalg.norm(x_true) < 1e-10

    def test_matches_dense_lu(self, rng):
        dense = rng.standard_normal((12, 12))
        dense += np.diag(np.abs(dense).sum(axis=1) + 1)
        a = CSRMatrix.from_dense(dense)
        res = reference_lu(a)
        lu = dense.copy()
        for k in range(11):
            lu[k + 1:, k] /= lu[k, k]
            lu[k + 1:, k + 1:] -= np.outer(lu[k + 1:, k], lu[k, k + 1:])
        assert np.allclose(res.L.to_dense(), np.tril(lu, -1) + np.eye(12))
        assert np.allclose(res.U.to_dense(), np.triu(lu))

    def test_zero_pivot_raises(self):
        a = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(ZeroDivisionError):
            reference_lu(a)

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            reference_lu(CSRMatrix.empty((3, 4)))

    def test_fill_discovered(self):
        # arrowhead reversed: elimination fills the whole matrix
        from repro.matrices import arrow_matrix

        a = arrow_matrix(8, arms=1)
        rev = permute_symmetric(a, np.arange(8)[::-1])
        res = reference_lu(rev)
        assert res.U.nnz > rev.nnz / 2  # dense fill in U


class TestOracleAgainstSolvers:
    """The independent oracle must agree with every block substrate."""

    @pytest.mark.parametrize("make", [
        lambda a: PanguLUSolver(a, block_size=16, ordering="natural"),
        lambda a: SuperLUSolver(a, max_supernode=8, ordering="natural"),
    ])
    def test_factors_match_oracle(self, make):
        a = circuit_like(70, seed=11)
        run = make(a).factorize()
        # natural ordering → no permutation → directly comparable
        oracle = reference_lu(a)
        assert np.allclose(run.L.to_dense(), oracle.L.to_dense(),
                           atol=1e-9)
        assert np.allclose(run.U.to_dense(), oracle.U.to_dense(),
                           atol=1e-9)

    def test_solutions_match_oracle_with_ordering(self, rng):
        a = poisson2d(9)
        b = rng.standard_normal(a.nrows)
        run = PanguLUSolver(a, block_size=16, ordering="mindeg").factorize()
        assert np.allclose(run.solve(b), reference_lu(a).solve(b))

"""Unit tests for Task, TaskType and the factorisation DAG."""

import numpy as np
import pytest

from repro.core import Task, TaskDAG, TaskType, build_block_dag
from repro.matrices import circuit_like, poisson2d
from repro.sparse import uniform_partition
from repro.symbolic import block_fill


def _dag_for(n=64, bs=8, builder=poisson2d, arg=8):
    a = builder(arg)
    part = uniform_partition(a.nrows, bs)
    bf = block_fill(a, part)
    return build_block_dag(bf, part), bf, part


class TestTask:
    def _t(self, ttype, i=2, j=5, rows=8, cols=6):
        return Task(tid=0, type=ttype, k=1, i=i, j=j, rows=rows, cols=cols,
                    nnz=rows * cols)

    def test_cuda_blocks_mapping(self):
        # Figure 7: GETRF/GEESM/SSSSM one block per column, TSTRF per row
        assert self._t(TaskType.GETRF).cuda_blocks == 6
        assert self._t(TaskType.GEESM).cuda_blocks == 6
        assert self._t(TaskType.SSSSM).cuda_blocks == 6
        assert self._t(TaskType.TSTRF).cuda_blocks == 8

    def test_distance_metric(self):
        assert self._t(TaskType.SSSSM, i=2, j=5).distance == 3
        assert self._t(TaskType.GETRF, i=4, j=4).distance == 0

    def test_shared_mem_scales_with_blocks(self):
        small = self._t(TaskType.GETRF, rows=8, cols=4)
        large = self._t(TaskType.GETRF, rows=8, cols=16)
        assert large.shared_mem_bytes > small.shared_mem_bytes

    def test_oversized_vector_falls_back_to_global(self):
        t = self._t(TaskType.GETRF, rows=10 ** 5, cols=4)
        assert t.shared_mem_bytes == 0

    def test_minimum_one_block(self):
        t = self._t(TaskType.GETRF, rows=0, cols=0)
        assert t.cuda_blocks == 1


class TestDAGConstruction:
    def test_task_counts_consistent(self):
        dag, bf, part = _dag_for()
        nb = part.nblocks
        counts = dag.counts_by_type()
        assert counts["GETRF"] == nb
        n_lower = int(np.tril(bf, -1).sum())
        n_upper = int(np.triu(bf, 1).sum())
        assert counts["TSTRF"] == n_lower
        assert counts["GEESM"] == n_upper

    def test_ssssm_count_formula(self):
        dag, bf, part = _dag_for()
        nb = part.nblocks
        expect = sum(
            int(bf[k + 1:, k].sum()) * int(bf[k, k + 1:].sum())
            for k in range(nb)
        )
        assert dag.counts_by_type()["SSSSM"] == expect

    def test_acyclic(self):
        dag, _, _ = _dag_for()
        dag.validate()

    def test_first_getrf_initially_ready(self):
        dag, _, _ = _dag_for()
        ready = dag.initial_ready()
        getrf0 = [t for t in ready if dag.tasks[t].type == TaskType.GETRF
                  and dag.tasks[t].k == 0]
        assert len(getrf0) == 1

    def test_dependencies_match_paper_rules(self):
        dag, _, _ = _dag_for(bs=16)
        by_coords = {}
        for t in dag.tasks:
            by_coords.setdefault((t.type, t.k, t.i, t.j), t.tid)
        for t in dag.tasks:
            if t.type == TaskType.SSSSM:
                tstrf = by_coords[(TaskType.TSTRF, t.k, t.i, t.k)]
                geesm = by_coords[(TaskType.GEESM, t.k, t.k, t.j)]
                assert t.tid in dag.successors[tstrf]
                assert t.tid in dag.successors[geesm]

    def test_getrf_waits_for_schur_updates(self):
        dag, bf, part = _dag_for()
        # any GETRF(k) with k>0 whose tile receives updates must not be
        # initially ready
        ready = set(dag.initial_ready())
        for t in dag.tasks:
            if t.type == TaskType.GETRF and dag.pred_count[t.tid] > 0:
                assert t.tid not in ready

    def test_sparse_flag_propagates(self):
        a = poisson2d(8)
        part = uniform_partition(64, 8)
        bf = block_fill(a, part)
        dag = build_block_dag(bf, part, sparse_tiles=True)
        assert all(t.sparse for t in dag.tasks)

    def test_owner_function_applied(self):
        a = poisson2d(8)
        part = uniform_partition(64, 8)
        bf = block_fill(a, part)
        dag = build_block_dag(bf, part, owner_of=lambda i, j: (i + j) % 3)
        for t in dag.tasks:
            assert t.owner == (t.i + t.j) % 3

    def test_fill_shape_mismatch_rejected(self):
        part = uniform_partition(64, 8)
        with pytest.raises(ValueError):
            build_block_dag(np.eye(3, dtype=bool), part)

    def test_tile_nnz_bounds_estimates(self):
        a = poisson2d(8)
        part = uniform_partition(64, 8)
        bf = block_fill(a, part)
        tiny = {key: 1 for key in zip(*np.nonzero(bf))}
        dag_sparse = build_block_dag(bf, part, tile_nnz=tiny, sparse_tiles=True)
        dag_dense = build_block_dag(bf, part, sparse_tiles=False)
        assert dag_sparse.total_flops_est() < dag_dense.total_flops_est()


class TestDAGAnalysis:
    def test_level_schedule_partitions_tasks(self):
        dag, _, _ = _dag_for()
        levels = dag.level_schedule()
        all_tids = np.concatenate(levels)
        assert np.array_equal(np.sort(all_tids), np.arange(dag.n_tasks))

    def test_level_schedule_respects_deps(self):
        dag, _, _ = _dag_for()
        levels = dag.level_schedule()
        level_of = np.empty(dag.n_tasks, dtype=int)
        for d, lvl in enumerate(levels):
            level_of[lvl] = d
        for t in range(dag.n_tasks):
            for s in dag.successors[t]:
                assert level_of[s] > level_of[t]

    def test_critical_path_decreases_along_edges(self):
        dag, _, _ = _dag_for()
        cp = dag.critical_path_lengths()
        for t in range(dag.n_tasks):
            for s in dag.successors[t]:
                assert cp[t] >= cp[s] + 1

    def test_critical_path_equals_level_count(self):
        dag, _, _ = _dag_for()
        assert dag.critical_path_lengths().max() == len(dag.level_schedule())

    def test_sinks_have_cp_one(self):
        dag, _, _ = _dag_for()
        cp = dag.critical_path_lengths()
        sinks = [t for t in range(dag.n_tasks) if not dag.successors[t]]
        assert all(cp[t] == 1 for t in sinks)

    def test_irregular_matrix_dag(self):
        a = circuit_like(96, seed=4)
        part = uniform_partition(96, 12)
        bf = block_fill(a, part)
        dag = build_block_dag(bf, part, sparse_tiles=True)
        dag.validate()
        assert dag.n_tasks > part.nblocks

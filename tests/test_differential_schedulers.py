"""Differential testing across every scheduling policy.

The scheduler decides *when* tasks run, never *what* they compute — so
every policy must produce the same L/U factors up to floating-point
reassociation (batched SSSSM updates to one tile accumulate in
batch-dependent order) and the same solve residuals.  Factoring each
matrix with all of :data:`repro.core.SCHEDULER_NAMES` and comparing
against the serial baseline catches any rewrite that reorders,
duplicates or drops work.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SCHEDULER_NAMES
from repro.core.staticanalysis import validate_schedule
from repro.matrices.generators import circuit_like, poisson2d
from repro.solvers import PanguLUSolver, SuperLUSolver

#: Reassociation tolerance: different batch decompositions reassociate
#: SSSSM accumulations, nothing else.
RTOL = 1e-9
ATOL = 1e-12


def _factor_all(make_solver):
    runs = {}
    for name in SCHEDULER_NAMES:
        runs[name] = make_solver(name).factorize()
    return runs


def _assert_same_factors(ref, other, label):
    for which in ("L", "U"):
        fa = getattr(ref, which)
        fb = getattr(other, which)
        assert fa.shape == fb.shape, f"{label}: {which} shape differs"
        assert np.array_equal(fa.indptr, fb.indptr), \
            f"{label}: {which} structure (indptr) differs"
        assert np.array_equal(fa.indices, fb.indices), \
            f"{label}: {which} structure (indices) differs"
        np.testing.assert_allclose(
            fa.data, fb.data, rtol=RTOL, atol=ATOL,
            err_msg=f"{label}: {which} values diverge beyond reassociation",
        )


@pytest.mark.parametrize("solver_cls,matrix,kwargs", [
    (PanguLUSolver, "circuit", {"block_size": 16}),
    (PanguLUSolver, "poisson", {"block_size": 8}),
    (SuperLUSolver, "circuit", {"max_supernode": 16, "merge_schur": False}),
    (SuperLUSolver, "poisson", {}),
], ids=["pangulu-circuit", "pangulu-poisson",
        "superlu-circuit-unfused", "superlu-poisson"])
def test_all_schedulers_agree(solver_cls, matrix, kwargs):
    a = (circuit_like(180, seed=2) if matrix == "circuit"
         else poisson2d(14))
    runs = _factor_all(
        lambda name: solver_cls(a, scheduler=name, **kwargs)
    )
    ref = runs["serial"]
    b = np.ones(a.nrows)

    for name, run in runs.items():
        # SuperLU's trojan path may rewrite the DAG (§3.5.1 Schur
        # fusion), so batch ids only map onto run.dag when unfused.
        fused = (solver_cls is SuperLUSolver and name == "trojan"
                 and kwargs.get("merge_schur", True))
        if not fused:
            validate_schedule(run.dag, run.schedule.batches)
            assert run.schedule.task_count == run.dag.n_tasks

        label = f"{solver_cls.solver_name}/{matrix}/{name}"
        _assert_same_factors(ref, run, label)

        x = run.solve(b)
        res = np.linalg.norm(a @ x - b) / np.linalg.norm(b)
        assert res < 1e-8, f"{label}: residual {res:.3e}"

    # residuals themselves agree to reassociation tolerance
    x_ref = ref.solve(b)
    for name, run in runs.items():
        np.testing.assert_allclose(
            run.solve(b), x_ref, rtol=1e-8, atol=1e-12,
            err_msg=f"{name}: solution vector diverges from serial",
        )

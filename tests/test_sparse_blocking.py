"""Unit tests for partitioning and tile extraction."""

import numpy as np
import pytest

from repro.sparse import (
    CSRMatrix,
    Partition,
    assemble_from_blocks,
    block_pattern,
    extract_block,
    partition_from_boundaries,
    split_tiles,
    uniform_partition,
)


class TestPartition:
    def test_uniform_divisible(self):
        p = uniform_partition(12, 4)
        assert p.nblocks == 3
        assert np.array_equal(p.sizes(), [4, 4, 4])

    def test_uniform_remainder(self):
        p = uniform_partition(10, 4)
        assert p.nblocks == 3
        assert np.array_equal(p.sizes(), [4, 4, 2])

    def test_uniform_oversized_block(self):
        p = uniform_partition(5, 100)
        assert p.nblocks == 1
        assert p.block_size(0) == 5

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            uniform_partition(10, 0)

    def test_block_of(self):
        p = uniform_partition(10, 3)
        assert np.array_equal(p.block_of(np.array([0, 2, 3, 8, 9])),
                              [0, 0, 1, 2, 3])

    def test_block_range(self):
        p = partition_from_boundaries([0, 3, 7, 10])
        assert p.block_range(1) == (3, 7)
        assert p.block_size(2) == 3

    def test_rejects_nonmonotone(self):
        with pytest.raises(ValueError):
            Partition(np.array([0, 5, 3, 10]))

    def test_rejects_missing_zero(self):
        with pytest.raises(ValueError):
            Partition(np.array([1, 5]))

    def test_rejects_too_short(self):
        with pytest.raises(ValueError):
            Partition(np.array([0]))


class TestTiles:
    def test_extract_block_matches_dense(self, random_sparse):
        a, dense = random_sparse
        sub = extract_block(a, 5, 20, 10, 33)
        sub.check()
        assert np.allclose(sub.to_dense(), dense[5:20, 10:33])

    def test_extract_empty_region(self, random_sparse):
        a, _ = random_sparse
        sub = extract_block(a, 0, 0, 0, 0)
        assert sub.nnz == 0

    def test_split_roundtrip(self, random_sparse):
        a, dense = random_sparse
        part = uniform_partition(40, 7)
        tiles = split_tiles(a, part)
        back = assemble_from_blocks(tiles, part)
        assert np.allclose(back.to_dense(), dense)

    def test_split_tiles_local_coords(self, random_sparse):
        a, dense = random_sparse
        part = uniform_partition(40, 16)
        tiles = split_tiles(a, part)
        for (bi, bj), tile in tiles.items():
            r0, r1 = part.block_range(bi)
            c0, c1 = part.block_range(bj)
            assert np.allclose(tile.to_dense(), dense[r0:r1, c0:c1])

    def test_split_tiles_omits_empty(self):
        dense = np.zeros((8, 8))
        dense[0, 0] = 1.0
        a = CSRMatrix.from_dense(dense)
        tiles = split_tiles(a, uniform_partition(8, 4))
        assert set(tiles) == {(0, 0)}

    def test_split_rejects_wrong_size(self, random_sparse):
        a, _ = random_sparse
        with pytest.raises(ValueError):
            split_tiles(a, uniform_partition(39, 13))

    def test_block_pattern(self, random_sparse):
        a, dense = random_sparse
        part = uniform_partition(40, 10)
        pat = block_pattern(a, part)
        for bi in range(4):
            for bj in range(4):
                expect = np.any(dense[bi * 10:(bi + 1) * 10,
                                      bj * 10:(bj + 1) * 10])
                assert pat[bi, bj] == expect

    def test_block_pattern_empty_matrix(self):
        pat = block_pattern(CSRMatrix.empty((8, 8)), uniform_partition(8, 4))
        assert not pat.any()

    def test_assemble_skips_empty_tiles(self):
        part = uniform_partition(6, 3)
        tiles = {(0, 0): CSRMatrix.empty((3, 3))}
        out = assemble_from_blocks(tiles, part)
        assert out.nnz == 0
